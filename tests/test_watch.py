"""Live telemetry: streaming sink, health watchdog, ``repro watch``,
dashboard, and run-store GC.

The invariants under test (see ``repro.obs.watch`` / ``repro.obs.trace``):

- streaming a run's trace changes nothing -- tuned results are
  bit-identical with streaming on or off, a completed streamed run's
  ``trace.jsonl`` is byte-for-byte the canonical end-save, and the write
  cost fits inside the 2% observability budget;
- a run killed mid-append leaves a loadable prefix (truncated at worst
  mid-line) that ``repro watch`` diagnoses and ``--resume`` continues
  streaming into the same file;
- the health rules flip on synthetic pathologies (stall, error storm,
  quarantine spike, cost-model collapse, stale checkpoint) and stay quiet
  on healthy runs, with ``--fail-on`` mapping alerts to exit codes.
"""

import json
import os
import subprocess
import sys
import time

import pytest

from repro.cli import _single_op, main as cli_main
from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.obs.dashboard import (
    dashboard_data,
    render_dashboard,
    write_dashboard,
)
from repro.obs.runstore import (
    HEALTH_FILE,
    MANIFEST_FILE,
    STATUS_COMPLETED,
    STATUS_FAILED,
    STATUS_RUNNING,
    TRACE_FILE,
    RunStore,
)
from repro.obs.trace import Trace, TraceReadStats, iter_trace_records, \
    load_trace
from repro.obs.watch import (
    RULE_NAMES,
    TraceTail,
    Watchdog,
    WatchRules,
    WatchState,
    evaluate,
    parse_fail_on,
    render_watch_frame,
    watch_run,
    write_health,
)
from repro.ops.gemm import gemm
from repro.tuning.baselines import tune_alt
from repro.tuning.checkpoint import load_checkpoint
from repro.tuning.measurer import MeasureOptions

MACHINE = get_machine("intel_cpu")


def _gmm(size=16):
    return gemm(Tensor("a", (size, size)), Tensor("b", (size, size)),
                name="gmm")


def _no_disk_cache():
    return MeasureOptions(cache_dir=None)


# -- synthetic record builders ----------------------------------------------

def ev(name, ts=0.0, **attrs):
    return {"kind": "event", "name": name, "ts": ts, "span": None,
            "attrs": attrs}


def batch_span(fresh, t0=0.0, t1=0.5):
    return {"kind": "span", "id": 1, "parent": None, "name": "measure_batch",
            "t_start": t0, "t_end": t1,
            "attrs": {"submitted": fresh, "fresh": fresh}}


def feed_rounds(state, n, best=1e-5, start=0, improve_first=True):
    for i in range(n):
        b = best if (improve_first or i > 0) else None
        state.feed(ev("round", ts=float(start + i), round=start + i,
                      stage="loop", task="g", best_so_far=b,
                      measurements=(start + i + 1) * 4, budget_remaining=8))


# ---------------------------------------------------------------------------
# Rule / option parsing
# ---------------------------------------------------------------------------

class TestParsing:
    def test_rules_defaults_and_overrides(self):
        assert WatchRules.parse(None).stall_rounds == 30
        r = WatchRules.parse("stall_rounds=10, error_rate=0.5")
        assert r.stall_rounds == 10 and r.error_rate == 0.5
        assert r.quarantine_max == 3  # untouched fields keep defaults
        assert isinstance(r.stall_rounds, int)
        assert isinstance(r.checkpoint_max_age_s, float)

    def test_rules_rejects_unknown_and_malformed(self):
        with pytest.raises(ValueError, match="unknown watch rule"):
            WatchRules.parse("no_such_rule=1")
        with pytest.raises(ValueError, match="name=value"):
            WatchRules.parse("stall_rounds")

    def test_fail_on(self):
        assert parse_fail_on(None) == ()
        assert parse_fail_on("any") == RULE_NAMES
        assert parse_fail_on("stall, errors") == ("stall", "errors")
        with pytest.raises(ValueError, match="unknown health rule"):
            parse_fail_on("stall,bogus")


# ---------------------------------------------------------------------------
# The rule engine over synthetic streams
# ---------------------------------------------------------------------------

class TestRules:
    def test_healthy_stream_is_quiet(self):
        state = WatchState()
        state.feed(batch_span(8))
        feed_rounds(state, 5)
        health = evaluate(state, run_id="r1")
        assert health["status"] == "ok" and health["alerts"] == []
        assert health["schema"] == 1 and health["run_id"] == "r1"
        p = health["progress"]
        assert p["rounds"] == 5 and p["best_latency"] == 1e-5
        assert p["fresh_evaluations"] == 8

    def test_stall_fires_only_while_running(self):
        state = WatchState()
        # round 1 improves, then 34 flat rounds
        feed_rounds(state, 1, best=1e-5)
        feed_rounds(state, 34, best=1e-5, start=1)
        health = evaluate(state, run_status=STATUS_RUNNING)
        assert [a["rule"] for a in health["alerts"]] == ["stall"]
        assert health["alerts"][0]["data"]["rounds_since_improvement"] == 34
        # a completed run that converged early is not "stalled"
        assert evaluate(state, run_status=STATUS_COMPLETED)["alerts"] == []

    def test_stall_resets_on_improvement(self):
        state = WatchState()
        feed_rounds(state, 40, best=1e-5)
        state.feed(ev("round", ts=40.0, round=40, stage="loop", task="g",
                      best_so_far=5e-6, measurements=164))
        assert evaluate(state)["alerts"] == []

    def test_error_storm_is_critical_and_window_recovers(self):
        state = WatchState()
        state.feed(batch_span(40))
        for _ in range(12):
            state.feed(ev("measure_error", kind="oserror", task="g"))
        health = evaluate(state)
        (alert,) = health["alerts"]
        assert alert["rule"] == "errors" and alert["severity"] == "critical"
        assert alert["data"]["recent"] == 12
        assert alert["data"]["kinds"] == {"oserror": 12}
        # 480 clean fresh evaluations push the storm out of the window
        state.feed(batch_span(480))
        assert evaluate(state)["alerts"] == []
        assert state.errors_total == 12  # totals are forever

    def test_error_rate_needs_absolute_floor(self):
        # 2 errors in 4 fresh evals is a 50% rate but below error_min
        state = WatchState()
        state.feed(batch_span(4))
        for _ in range(2):
            state.feed(ev("measure_error", kind="crash"))
        assert evaluate(state)["alerts"] == []

    def test_quarantine_spike(self):
        state = WatchState()
        state.feed(batch_span(10))
        for _ in range(4):
            state.feed(ev("measure_quarantined", task="g"))
        (alert,) = evaluate(state)["alerts"]
        assert alert["rule"] == "quarantine" and alert["severity"] == "warn"

    def test_cost_model_collapse_and_recovery(self):
        state = WatchState()
        # 12 candidates, perfectly wrong: higher score <=> higher latency
        predicted = list(range(12))
        measured = [i * 1e-6 for i in range(12)]
        state.feed(ev("cost_model_batch", task="g", generation=1,
                      predicted=predicted, measured=measured))
        (alert,) = evaluate(state)["alerts"]  # C(12,2)=66 pairs >= 60
        assert alert["rule"] == "cost_model"
        assert alert["data"]["rank_accuracy"] == 0.0
        # a healthy batch lifts the recent window back above the floor
        for _ in range(4):
            state.feed(ev("cost_model_batch", task="g", generation=2,
                          predicted=predicted,
                          measured=[(12 - i) * 1e-6 for i in range(12)]))
        assert evaluate(state)["alerts"] == []

    def test_generation_zero_is_exempt(self):
        # the untrained model ranks randomly; that is not a collapse
        state = WatchState()
        state.feed(ev("cost_model_batch", task="g", generation=0,
                      predicted=list(range(12)),
                      measured=[i * 1e-6 for i in range(12)]))
        assert evaluate(state)["alerts"] == []
        assert state.recent_rank_accuracy() == (None, 0)

    def test_cost_model_tolerates_infinity_strings(self):
        # failing candidates serialize as "Infinity" via repr coercion
        state = WatchState()
        state.feed(ev("cost_model_batch", task="g", generation=1,
                      predicted=[3.0, 2.0, 1.0],
                      measured=[1e-6, 2e-6, "Infinity"]))
        acc, pairs = state.recent_rank_accuracy()
        assert pairs == 3 and acc == 1.0

    def test_checkpoint_age_fires_only_while_running(self):
        state = WatchState()
        health = evaluate(state, checkpoint_age_s=1000.0)
        assert [a["rule"] for a in health["alerts"]] == ["checkpoint_age"]
        assert evaluate(state, run_status=STATUS_FAILED,
                        checkpoint_age_s=1000.0)["alerts"] == []
        assert evaluate(state, checkpoint_age_s=None)["alerts"] == []

    def test_budget_eta_from_network_grants(self):
        state = WatchState()
        state.feed(ev("network_start", ts=0.0, graph="net", budget=100,
                      tasks=2))
        state.feed(ev("budget_grant", ts=10.0, round=0, task="a",
                      granted=50, spent_total=50))
        feed_rounds(state, 1, start=10)
        total, spent = state.budget_totals()
        assert (total, spent) == (100, 50)
        # burned 50 in 10s -> the other 50 takes ~10 more
        assert evaluate(state)["progress"]["eta_s"] == pytest.approx(10.0)

    def test_budget_from_per_task_rounds(self):
        state = WatchState()
        feed_rounds(state, 3)  # measurements=12, budget_remaining=8
        assert state.budget_totals() == (20, 12)


# ---------------------------------------------------------------------------
# In-process watchdog: listener wiring, health.json, health events
# ---------------------------------------------------------------------------

class TestWatchdog:
    def storm(self, trace):
        with trace.span("measure_batch", submitted=40, fresh=40):
            pass
        for _ in range(12):
            trace.event("measure_error", kind="oserror", task="g")

    def test_alert_lifecycle_writes_health_and_events(self, tmp_path):
        run_dir = str(tmp_path)
        trace = Trace(name="t",
                      stream_to=os.path.join(run_dir, TRACE_FILE))
        wd = Watchdog(trace, run_dir=run_dir).attach()
        trace.event("round", round=0, stage="loop", task="g",
                    best_so_far=1e-5, measurements=4)
        assert wd.health["status"] == "ok"
        health_path = os.path.join(run_dir, HEALTH_FILE)
        assert os.path.exists(health_path)

        self.storm(trace)
        with open(health_path) as f:
            on_disk = json.load(f)
        assert on_disk["status"] == "alert"
        assert [a["rule"] for a in on_disk["alerts"]] == ["errors"]

        # the alert-state flip itself landed in the trace, exactly once
        raised = [e for e in trace.events if e.get("kind") == "event"
                  and e.get("name") == "health"]
        assert len(raised) == 1
        assert raised[0]["attrs"]["raised"] == ["errors"]

        # recovery emits the matching 'cleared' event
        with trace.span("measure_batch", submitted=480, fresh=480):
            pass
        trace.event("round", round=1, stage="loop", task="g",
                    best_so_far=1e-5, measurements=8)
        health_events = [e for e in trace.events if e.get("kind") == "event"
                         and e.get("name") == "health"]
        assert len(health_events) == 2
        assert health_events[-1]["attrs"]["cleared"] == ["errors"]
        assert wd.health["status"] == "ok"

        final = wd.finalize(STATUS_COMPLETED)
        assert final["run_status"] == STATUS_COMPLETED
        with open(health_path) as f:
            assert json.load(f)["run_status"] == STATUS_COMPLETED

    def test_health_events_ride_the_stream_without_recursion(self, tmp_path):
        path = str(tmp_path / TRACE_FILE)
        trace = Trace(name="t", stream_to=path)
        Watchdog(trace, run_dir=str(tmp_path)).attach()
        self.storm(trace)
        trace.stream_close()
        streamed = [r["attrs"]["raised"]
                    for r in iter_trace_records(path)
                    if r.get("kind") == "event" and r.get("name") == "health"]
        assert streamed == [["errors"]]


# ---------------------------------------------------------------------------
# Lazy reading + the external tail
# ---------------------------------------------------------------------------

class TestTailAndLazyReader:
    def test_iter_trace_records_is_lazy_and_counts_skips(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_text(
            json.dumps({"kind": "meta", "version": 1, "name": "x"}) + "\n"
            + "{torn mid-wri\n"
            + json.dumps({"kind": "hologram"}) + "\n"
            + json.dumps({"kind": "event", "name": "round", "ts": 0.1,
                          "attrs": {}}) + "\n"
        )
        stats = TraceReadStats()
        it = iter_trace_records(str(path), stats)
        assert next(it)["kind"] == "meta"  # nothing parsed past this line yet
        assert stats.corrupt == 0
        assert [r["kind"] for r in it] == ["event"]
        assert stats.corrupt == 1
        assert stats.unknown == {"hologram": 1}

    def test_tail_buffers_partial_last_line(self, tmp_path):
        path = str(tmp_path / TRACE_FILE)
        full = json.dumps({"kind": "event", "name": "round", "ts": 1.0,
                           "attrs": {"round": 0}}) + "\n"
        with open(path, "w") as f:
            f.write(json.dumps({"kind": "meta", "version": 1}) + "\n")
        tail = TraceTail(path)
        restarted, records = tail.poll()
        assert not restarted and [r["kind"] for r in records] == ["meta"]
        # writer is mid-append: half a line on disk
        with open(path, "a") as f:
            f.write(full[:20])
        restarted, records = tail.poll()
        assert records == [] and tail.stats.corrupt == 0  # carried, not lost
        with open(path, "a") as f:
            f.write(full[20:])
        _, records = tail.poll()
        assert [r["name"] for r in records] == ["round"]
        assert tail.poll() == (False, [])  # nothing new -> nothing returned

    def test_tail_detects_end_save_rewrite(self, tmp_path):
        path = str(tmp_path / TRACE_FILE)
        trace = Trace(name="t", stream_to=path)
        trace.event("round", round=0, stage="loop", task="g",
                    best_so_far=1e-5)
        tail = TraceTail(path)
        _, records = tail.poll()
        assert len(records) == 2  # meta + event
        trace.save(path)  # atomic replace: new inode, canonical form
        restarted, records = tail.poll()
        assert restarted
        # the records start over from the top of the canonical rewrite
        assert records[0]["kind"] == "meta"
        assert records[-1]["kind"] == "metrics"

    def test_tail_missing_file_is_quiet(self, tmp_path):
        assert TraceTail(str(tmp_path / "nope.jsonl")).poll() == (False, [])


# ---------------------------------------------------------------------------
# watch_run + CLI exit codes on canned run directories
# ---------------------------------------------------------------------------

def fake_run_dir(tmp_path, status, records, name="fake-run"):
    run_dir = tmp_path / name
    run_dir.mkdir()
    (run_dir / MANIFEST_FILE).write_text(json.dumps(
        {"run_id": name, "status": status}
    ))
    (run_dir / TRACE_FILE).write_text("".join(
        json.dumps(r) + "\n"
        for r in [{"kind": "meta", "version": 1, "name": name}] + records
    ))
    return str(run_dir)


def storm_records():
    return [batch_span(40)] + [
        ev("measure_error", ts=0.6, kind="oserror") for _ in range(12)
    ]


class TestWatchRun:
    def test_finished_run_alert_maps_to_exit_code(self, tmp_path):
        run_dir = fake_run_dir(tmp_path, STATUS_FAILED, storm_records())
        frames = []
        rc = watch_run(run_dir, fail_on=("errors",), once=True,
                       emit=frames.append)
        assert rc == 1
        assert "ALERT [errors]" in frames[-1]
        assert "status=failed" in frames[-1]
        # same run, different contract: only stall is fatal -> clean exit
        assert watch_run(run_dir, fail_on=("stall",), once=True) == 0

    def test_live_run_exits_on_deadline(self, tmp_path):
        rounds = [ev("round", ts=float(i), round=i, stage="loop", task="g",
                     best_so_far=1e-5, measurements=4 * (i + 1))
                  for i in range(35)]
        run_dir = fake_run_dir(tmp_path, STATUS_RUNNING, rounds)
        rc = watch_run(run_dir, fail_on=("stall",), max_seconds=0,
                       interval=0, sleep=lambda _s: None)
        assert rc == 1  # still 'running', 34 flat rounds -> stall

    def test_render_frame_smoke(self):
        state = WatchState()
        state.feed(batch_span(8))
        feed_rounds(state, 3)
        frame = render_watch_frame(state, evaluate(state), title="r1")
        assert "watch r1" in frame and "rounds 3" in frame
        assert "best 10.00 us" in frame
        assert "alerts: none" in frame

    def test_cli_watch(self, tmp_path, capsys):
        run_dir = fake_run_dir(tmp_path, STATUS_FAILED, storm_records())
        assert cli_main(["watch", run_dir, "--once"]) == 0
        assert "ALERT [errors]" in capsys.readouterr().out
        assert cli_main(
            ["watch", run_dir, "--once", "--fail-on", "errors"]
        ) == 1
        assert cli_main(  # rules are adjustable from the command line
            ["watch", run_dir, "--once", "--fail-on", "errors",
             "--rules", "error_min=50"]
        ) == 0
        with pytest.raises(SystemExit, match="not a run directory"):
            cli_main(["watch", str(tmp_path / "nope")])
        with pytest.raises(SystemExit, match="unknown health rule"):
            cli_main(["watch", run_dir, "--once", "--fail-on", "bogus"])


# ---------------------------------------------------------------------------
# Run-store GC
# ---------------------------------------------------------------------------

def make_run(store, name, status=STATUS_COMPLETED, created=None):
    writer = store.create(name, machine="intel_cpu", seed=0,
                          workload=f"tune:{name}", config={}).begin()
    manifest_path = os.path.join(writer.path, MANIFEST_FILE)
    with open(manifest_path) as f:
        manifest = json.load(f)
    manifest["status"] = status
    if created is None:
        manifest.pop("created", None)
    else:
        manifest["created"] = created
    with open(manifest_path, "w") as f:
        json.dump(manifest, f)
    return writer.path


class TestRunStoreGc:
    def test_requires_criteria(self, tmp_path):
        with pytest.raises(ValueError, match="keep-last"):
            RunStore(str(tmp_path)).gc()
        with pytest.raises(ValueError, match=">= 0"):
            RunStore(str(tmp_path)).gc(keep_last=-1)

    def test_plan_keeps_running_and_newest(self, tmp_path):
        store = RunStore(str(tmp_path))
        now = time.time()
        old = make_run(store, "a-old", created=now - 86400)
        live = make_run(store, "b-live", status=STATUS_RUNNING, created=now)
        new = make_run(store, "c-new", created=now)
        plan = store.gc(keep_last=1)
        by_id = {os.path.join(str(tmp_path), r["run_id"]): r for r in plan}
        assert by_id[old]["action"] == "delete"
        assert by_id[live] == {
            "run_id": os.path.basename(live), "action": "keep",
            "reason": "running",
        }
        assert by_id[new]["action"] == "keep"
        # dry run by default: nothing actually removed
        assert os.path.isdir(old)

    def test_apply_deletes_and_keep_days_protects(self, tmp_path):
        store = RunStore(str(tmp_path))
        now = time.time()
        ancient = make_run(store, "a-ancient", created=now - 30 * 86400)
        undated = make_run(store, "b-undated", created=None)
        young = make_run(store, "c-young", created=now - 3600)
        plan = store.gc(keep_days=7, apply=True, now=now)
        actions = {r["run_id"]: (r["action"], r["reason"]) for r in plan}
        assert actions[os.path.basename(ancient)][0] == "delete"
        # never delete what cannot be dated
        assert actions[os.path.basename(undated)] == ("keep", "undated")
        assert actions[os.path.basename(young)][0] == "keep"
        assert not os.path.isdir(ancient)
        assert os.path.isdir(undated) and os.path.isdir(young)

    def test_cli_gc(self, tmp_path, capsys):
        store = RunStore(str(tmp_path / "rs"))
        now = time.time()
        make_run(store, "a-old", created=now - 86400)
        make_run(store, "b-new", created=now)
        assert cli_main(
            ["runs", "gc", store.root, "--keep-last", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "would delete 1 of 2 run(s)" in out
        assert "dry run" in out
        assert len(store.run_ids()) == 2
        assert cli_main(
            ["runs", "gc", store.root, "--keep-last", "1", "--apply"]
        ) == 0
        assert "deleted 1 of 2" in capsys.readouterr().out
        ids = store.run_ids()
        assert len(ids) == 1 and "b-new" in ids[0]
        with pytest.raises(SystemExit, match="keep-last"):
            cli_main(["runs", "gc", store.root])


# ---------------------------------------------------------------------------
# Dashboard
# ---------------------------------------------------------------------------

def finished_run(store, name="tune-gmm", latency=1e-6, alerts=()):
    writer = store.create(name, machine="intel_cpu", seed=0,
                          workload=f"tune:{name}",
                          config={"op": "gmm", "budget": 8}).begin()
    trace = Trace(name=name)
    with trace.span("tune_task", task="gmm"):
        trace.event("round", round=0, stage="loop", task="gmm",
                    best_so_far=latency * 2, measurements=4)
        trace.event("round", round=1, stage="loop", task="gmm",
                    best_so_far=latency, measurements=8)
    rec = writer.finish(trace, {
        "gmm": {"best_latency": latency, "measurements": 8,
                "timeline": [
                    {"round": 0, "stage": "loop", "best_so_far": latency * 2,
                     "measurements": 4},
                    {"round": 1, "stage": "loop", "best_so_far": latency,
                     "measurements": 8},
                ]},
    })
    health = {
        "schema": 1, "run_id": rec.run_id, "generated_at": time.time(),
        "status": "alert" if alerts else "ok",
        "run_status": STATUS_COMPLETED,
        "alerts": [{"rule": r, "severity": "warn", "message": f"{r} tripped",
                    "data": {}} for r in alerts],
        "progress": {"rounds": 2, "measurements": 8, "errors": 0},
    }
    write_health(rec.path, health)
    return rec


class TestDashboard:
    def test_aggregation_and_trends(self, tmp_path):
        store = RunStore(str(tmp_path / "rs"))
        # distinct names: run ids (and so store order) sort by name within
        # the same creation second
        finished_run(store, name="a-run", latency=2e-6)
        finished_run(store, name="b-run", latency=1e-6,
                     alerts=("quarantine",))
        data = dashboard_data(store.root)
        assert data["schema"] == 1 and len(data["runs"]) == 2
        row = data["runs"][-1]
        assert row["status"] == STATUS_COMPLETED
        assert row["health_status"] == "alert"
        assert row["alerts"][0]["rule"] == "quarantine"
        assert row["tasks"]["gmm"]["best_latency"] == 1e-6
        assert row["curve"] == [2e-6, 1e-6]
        # per-task trend across the store, oldest -> newest
        assert data["trends"]["gmm"] == [2e-6, 1e-6]

    def test_render_is_self_contained_html(self, tmp_path):
        store = RunStore(str(tmp_path / "rs"))
        rec = finished_run(store, alerts=("errors",))
        bench = tmp_path / "BENCH_baseline.json"
        bench.write_text(json.dumps({
            "tasks": {"gmm": {"best_latency": 1e-6, "measurements": 64,
                              "noise_rel": 0.01}},
        }))
        html = render_dashboard(dashboard_data(store.root, [str(bench)]))
        assert html.startswith("<!doctype html>")
        assert rec.run_id in html
        assert "1 run(s) with active alerts" in html
        assert "errors tripped" in html
        assert "BENCH_baseline.json" in html
        assert '<svg class="spark"' in html  # run + bench sparklines inline
        assert "<script" not in html  # static artifact: no JS, no fetches

    def test_cli_dashboard_and_fail_on_alert(self, tmp_path, capsys):
        store = RunStore(str(tmp_path / "rs"))
        finished_run(store)
        out = str(tmp_path / "dash.html")
        assert cli_main(["dashboard", store.root, "--out", out,
                         "--fail-on-alert"]) == 0
        assert "1 run(s), 0 with active alerts" in capsys.readouterr().out
        assert os.path.exists(out)
        finished_run(store, alerts=("stall",))
        assert cli_main(["dashboard", store.root, "--out", out,
                         "--fail-on-alert"]) == 1

    def test_write_dashboard_atomic(self, tmp_path):
        store = RunStore(str(tmp_path / "rs"))
        out = str(tmp_path / "dash.html")
        data = write_dashboard(store.root, out)
        assert data["runs"] == []
        assert not os.path.exists(out + ".tmp")


# ---------------------------------------------------------------------------
# Streaming invariants on the real tuner (pinned gate workload)
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def streamed_pair(tmp_path_factory):
    """The pinned gmm tune twice: plain, then streaming, with wall clocks."""
    path = str(tmp_path_factory.mktemp("stream") / TRACE_FILE)
    t0 = time.perf_counter()
    plain = tune_alt(_gmm(), MACHINE, budget=64, seed=0,
                     measure=_no_disk_cache())
    plain_wall = time.perf_counter() - t0
    trace = Trace(name="t", stream_to=path)
    streamed = tune_alt(_gmm(), MACHINE, budget=64, seed=0,
                        measure=_no_disk_cache(), trace=trace)
    return plain, plain_wall, streamed, trace, path


@pytest.mark.slow
class TestStreamingInvariants:
    def test_streamed_results_bit_identical(self, streamed_pair):
        plain, _, streamed, _, _ = streamed_pair
        assert streamed.best_latency == plain.best_latency
        assert streamed.measurements == plain.measurements
        assert streamed.history == plain.history
        assert str(streamed.best_schedule) == str(plain.best_schedule)
        assert {k: str(v) for k, v in streamed.best_layouts.items()} \
            == {k: str(v) for k, v in plain.best_layouts.items()}

    def test_stream_overhead_under_2_percent(self, streamed_pair):
        """The <2% budget, asserted constructively (as in test_profiler):
        re-perform every line write + flush the stream did and require the
        total to fit inside 2% of the plain tune's wall clock -- measuring
        streamed-vs-plain wall directly drowns in scheduler noise."""
        _, plain_wall, _, trace, path = streamed_pair
        lines = trace.lines()
        assert len(lines) > 100  # the pinned tune streams a real workload
        sink = path + ".replay"
        t0 = time.perf_counter()
        with open(sink, "w") as f:
            for line in lines:
                f.write(line + "\n")
                f.flush()
        cost = time.perf_counter() - t0
        os.unlink(sink)
        assert cost < 0.02 * plain_wall, (
            f"{len(lines)} streamed line writes cost {cost * 1e3:.1f} ms, "
            f"over 2% of the {plain_wall:.2f}s tune"
        )

    def test_killed_stream_prefix_loads(self, streamed_pair):
        *_, trace, path = streamed_pair
        # the live stream (before any end-save) is already a valid trace
        data = load_trace(path)
        rounds = [e for e in data.events if e.get("name") == "round"]
        assert rounds, "no round events reached the stream"
        assert [e["name"] for e in data.events].count("task_start") == 1
        assert any(e.get("name") == "measure_batch_start"
                   for e in data.events)
        assert data.metrics, "periodic metrics snapshots missing"
        # ... even with the last line torn mid-write (SIGKILL mid-append)
        raw = open(path).read()
        torn = path + ".torn"
        with open(torn, "w") as f:
            f.write(raw[: int(len(raw) * 0.9)])
        cut = load_trace(torn)
        assert [e for e in cut.events if e.get("name") == "round"]

    def test_end_save_rewrite_is_canonical(self, streamed_pair):
        *_, trace, path = streamed_pair
        trace.save(path)
        with open(path) as f:
            assert f.read() == "\n".join(trace.lines()) + "\n"
        assert trace.stream_path is None  # stream closed by the save


# ---------------------------------------------------------------------------
# End to end through the CLI: crash mid-append, resume, live watch
# ---------------------------------------------------------------------------

TUNE_ARGS = ["tune", "gmm", "--size", "16", "--budget", "96", "--seed", "0",
             "--no-measure-cache"]


@pytest.mark.slow
class TestCliLiveTelemetry:
    def test_run_store_streams_and_records_health(self, tmp_path):
        store = str(tmp_path / "rs")
        assert cli_main(TUNE_ARGS + ["--run-store", store]) == 0
        rec = RunStore(store).latest()
        assert rec.status == STATUS_COMPLETED
        health = rec.health
        assert health["status"] == "ok" and health["alerts"] == []
        assert health["run_status"] == STATUS_COMPLETED
        assert health["progress"]["rounds"] > 0
        assert health["progress"]["budget_total"] == 96
        # the completed trace is the canonical end-save of the stream
        with open(rec.trace_path) as f:
            lines = f.read().splitlines()
        assert json.loads(lines[0])["kind"] == "meta"
        assert json.loads(lines[-1])["kind"] == "metrics"
        names = [e.get("name") for e in rec.trace.events]
        assert "task_start" in names and "measure_batch_start" in names

    def test_no_stream_opts_out(self, tmp_path):
        store = str(tmp_path / "rs")
        assert cli_main(
            TUNE_ARGS + ["--run-store", store, "--no-stream"]
        ) == 0
        rec = RunStore(store).latest()
        assert rec.status == STATUS_COMPLETED
        assert os.path.exists(rec.trace_path)  # end-save still lands
        assert not os.path.exists(os.path.join(rec.path, HEALTH_FILE))

    def test_crash_mid_append_watch_flags_resume_continues(self, tmp_path):
        from tests.test_checkpoint import Killer, KillingManager

        # 1. reference run: its manifest carries the full CLI config
        ref_store = str(tmp_path / "ref")
        assert cli_main(TUNE_ARGS + ["--run-store", ref_store]) == 0
        ref = RunStore(ref_store).latest()

        # 2. same config, killed right after the second snapshot while
        #    streaming into the run dir; abandon the stream like SIGKILL
        store = RunStore(str(tmp_path / "rs"))
        writer = store.create(
            "tune-gmm", machine=ref.manifest["machine"],
            seed=ref.manifest["seed"], workload=ref.manifest["workload"],
            config=dict(ref.manifest["config"]),
        ).begin()
        trace_path = os.path.join(writer.path, TRACE_FILE)
        trace = Trace(name="tune:gmm", stream_to=trace_path)
        with pytest.raises(Killer):
            tune_alt(
                _single_op("gmm", 64, 16), MACHINE, budget=96, seed=0,
                measure=MeasureOptions(cache_dir=None), trace=trace,
                checkpoint=KillingManager(writer.checkpoint_path,
                                          die_after=2),
            )
        with open(trace_path, "a") as f:
            f.write('{"kind": "event", "name": "round", "at')  # torn write

        # 3. the truncated stream loads; watch diagnoses the dead run
        prefix = load_trace(trace_path)
        killed_rounds = [e for e in prefix.events
                         if e.get("name") == "round"]
        assert killed_rounds
        frames = []
        assert watch_run(writer.path, once=True, emit=frames.append) == 0
        assert "status=running" in frames[-1]  # interrupted, not completed
        time.sleep(0.05)  # let the checkpoint age past the test threshold
        assert cli_main(
            ["watch", writer.path, "--once", "--fail-on", "checkpoint_age",
             "--rules", "checkpoint_max_age_s=0.01"]
        ) == 1

        # 4. --resume appends to the same trace.jsonl and completes it
        assert load_checkpoint(writer.checkpoint_path)  # snapshot survived
        assert cli_main(["tune", "--resume", writer.path]) == 0
        rec = RunStore(store.root).latest()
        assert rec.path == writer.path
        assert rec.status == STATUS_COMPLETED
        assert rec.manifest["resumes"] == 1
        assert rec.health["status"] == "ok"
        full = load_trace(trace_path)
        resumed_rounds = [e for e in full.events if e.get("name") == "round"]
        assert len(resumed_rounds) >= len(killed_rounds)
        # and the resumed result matches the uninterrupted reference
        assert rec.result["tasks"]["gmm"]["best_latency"] \
            == ref.result["tasks"]["gmm"]["best_latency"]

    def test_live_watch_sees_fault_storm(self, tmp_path):
        """The ISSUE's end-to-end: a tune subprocess is watched while
        running; an injected fault storm flips the watchdog to alert and
        ``repro watch --fail-on errors`` exits nonzero."""
        store = str(tmp_path / "rs")
        src = os.path.dirname(os.path.dirname(os.path.dirname(
            os.path.abspath(__import__("repro").__file__)
        )))
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(src, "src") + os.pathsep + \
            env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "tune", "gmm", "--size", "16",
             "--budget", "128", "--seed", "0", "--no-measure-cache",
             "--run-store", store,
             "--inject-faults", "seed=7,oserror=0.6"],
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL, env=env,
        )
        try:
            run_dir = None
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                ids = RunStore(store).run_ids() if os.path.isdir(store) \
                    else []
                if ids and os.path.exists(
                    os.path.join(store, ids[0], TRACE_FILE)
                ):
                    run_dir = os.path.join(store, ids[0])
                    break
                time.sleep(0.05)
            assert run_dir, "tune subprocess never opened its stream"

            # watch the run concurrently with the tuning process
            frames = []
            watch_run(run_dir, interval=0.2, max_seconds=4,
                      emit=frames.append)
            assert frames
            assert any("status=running" in f for f in frames), \
                "watcher never saw the run live"

            assert proc.wait(timeout=180) == 0  # storm or not, it completes
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait()

        # the watchdog inside the run recorded the alert flip in the trace
        rec = RunStore(store).latest()
        assert rec.status == STATUS_COMPLETED
        health_flips = [e for e in rec.trace.events
                        if e.get("name") == "health"]
        assert any("errors" in (e["attrs"].get("raised") or [])
                   for e in health_flips)
        assert rec.metrics.get("measure.errors", 0) > 0

        # and the external watcher turns the persistent storm into exit 1
        assert cli_main(
            ["watch", "latest", "--store", store, "--once",
             "--fail-on", "errors"]
        ) == 1
        assert rec.health["status"] == "alert"
        assert "errors" in [a["rule"] for a in rec.health["alerts"]]
