"""Fixed layout schemes and transposed-convolution composites."""

import numpy as np
import pytest

from repro.exec.reference import conv2d_ref, evaluate_compute
from repro.exec.single_op import run_compute
from repro.ir.tensor import Tensor
from repro.layout.presets import (
    conv_scheme_layouts,
    fixed_scheme_layouts,
    gemm_scheme_layouts,
)
from repro.ops.conv import conv2d, conv3d, depthwise_conv2d
from repro.ops.gemm import gemm
from repro.ops.transposed import (
    transposed_conv2d,
    transposed_conv2d_ref,
    transposed_conv3d,
    transposed_conv3d_ref,
)

rng = np.random.default_rng(3)


def run_chain(comps, inputs):
    vals = dict(inputs)
    for c in comps:
        vals[c.output.name] = evaluate_compute(
            c, {t.name: vals[t.name] for t in c.inputs}
        )
    return vals[comps[-1].output.name]


class TestConvSchemes:
    @pytest.mark.parametrize("scheme", ["NOHW", "NHWO", "HWON", "NCHWc"])
    def test_conv2d_scheme_correct(self, scheme):
        x = rng.standard_normal((1, 4, 10, 10))
        k = rng.standard_normal((8, 4, 3, 3))
        comp = conv2d(Tensor("x", x.shape), Tensor("k", k.shape), name="c")
        layouts = conv_scheme_layouts(comp, scheme, ot=4)
        got = run_compute(comp, {"x": x, "k": k}, layouts)
        assert np.allclose(got, conv2d_ref(x, k))

    def test_nhwo_shapes(self):
        comp = conv2d(Tensor("x2", (1, 4, 10, 10)), Tensor("k2", (8, 4, 3, 3)), name="c")
        layouts = conv_scheme_layouts(comp, "NHWO")
        assert layouts["c.out"].physical_shape() == (1, 8, 8, 8)
        assert layouts["k2"].physical_shape() == (3, 3, 4, 8)  # rsIO

    def test_nchwc_snaps_to_divisor(self):
        comp = conv2d(Tensor("x3", (1, 6, 10, 10)), Tensor("k3", (10, 6, 3, 3)), name="c")
        layouts = conv_scheme_layouts(comp, "NCHWc", ot=16)  # 16 !| 10 -> snaps
        out_shape = layouts["c.out"].physical_shape()
        assert out_shape[1] * out_shape[-1] == 10

    def test_depthwise_schemes(self):
        x = rng.standard_normal((1, 4, 10, 10))
        k = rng.standard_normal((4, 3, 3))
        comp = depthwise_conv2d(Tensor("x4", x.shape), Tensor("k4", k.shape), name="d")
        from repro.exec.reference import depthwise_conv2d_ref

        for scheme in ("NHWO", "NCHWc"):
            layouts = conv_scheme_layouts(comp, scheme, ot=2)
            got = run_compute(comp, {"x4": x, "k4": k}, layouts)
            assert np.allclose(got, depthwise_conv2d_ref(x, k))

    def test_conv3d_scheme(self):
        x = rng.standard_normal((1, 2, 5, 7, 7))
        k = rng.standard_normal((4, 2, 2, 3, 3))
        comp = conv3d(Tensor("x5", x.shape), Tensor("k5", k.shape), name="c3")
        from repro.exec.reference import conv3d_ref

        layouts = conv_scheme_layouts(comp, "NHWO")  # generalizes to NDHWO
        got = run_compute(comp, {"x5": x, "k5": k}, layouts)
        assert np.allclose(got, conv3d_ref(x, k))

    def test_unknown_scheme(self):
        comp = conv2d(Tensor("x6", (1, 2, 6, 6)), Tensor("k6", (2, 2, 3, 3)), name="c")
        with pytest.raises(ValueError):
            conv_scheme_layouts(comp, "ZZZ")


class TestGemmSchemes:
    @pytest.mark.parametrize("scheme", ["KN", "NK", "NKn"])
    def test_gemm_scheme_correct(self, scheme):
        a = rng.standard_normal((12, 8))
        b = rng.standard_normal((8, 20))
        comp = gemm(Tensor("a", a.shape), Tensor("b", b.shape), name="g")
        layouts = gemm_scheme_layouts(comp, scheme, mt=4, nt=5)
        got = run_compute(comp, {"a": a, "b": b}, layouts)
        assert np.allclose(got, a @ b)

    def test_nk_transposes_b(self):
        comp = gemm(Tensor("a2", (4, 6)), Tensor("b2", (6, 10)), name="g")
        layouts = gemm_scheme_layouts(comp, "NK")
        assert layouts["b2"].physical_shape() == (10, 6)

    def test_dispatcher(self):
        comp = gemm(Tensor("a3", (4, 6)), Tensor("b3", (6, 10)), name="g")
        assert fixed_scheme_layouts(comp, "KN")
        conv = conv2d(Tensor("x7", (1, 2, 6, 6)), Tensor("k7", (2, 2, 3, 3)), name="c")
        assert fixed_scheme_layouts(conv, "NHWO")


class TestTransposed:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (2, 0), (2, 1), (3, 2)])
    def test_t2d_matches_reference(self, stride, pad):
        x = rng.standard_normal((1, 3, 5, 5))
        k = rng.standard_normal((4, 3, 3, 3))
        comps = transposed_conv2d(
            Tensor("x", x.shape), Tensor("k", k.shape), stride, pad, name="t"
        )
        got = run_chain(comps, {"x": x, "k": k})
        ref = transposed_conv2d_ref(x, k, stride, pad)
        assert got.shape == ref.shape
        assert np.allclose(got, ref)

    def test_t3d_matches_reference(self):
        x = rng.standard_normal((1, 2, 3, 4, 4))
        k = rng.standard_normal((3, 2, 2, 2, 2))
        comps = transposed_conv3d(
            Tensor("x", x.shape), Tensor("k", k.shape), 2, 0, name="t3"
        )
        got = run_chain(comps, {"x": x, "k": k})
        ref = transposed_conv3d_ref(x, k, 2, 0)
        assert got.shape == ref.shape and np.allclose(got, ref)

    def test_t2d_complex_part_is_tunable(self):
        comps = transposed_conv2d(
            Tensor("x", (1, 2, 4, 4)), Tensor("k", (2, 2, 4, 4)), 2, 1, name="t"
        )
        conv = comps[-1]
        assert conv.is_complex
        from repro.layout.templates import template_for

        assert template_for(conv) is not None

    def test_bad_pad_rejected(self):
        with pytest.raises(ValueError):
            transposed_conv2d(
                Tensor("x", (1, 2, 4, 4)), Tensor("k", (2, 2, 3, 3)), 2, 3
            )
