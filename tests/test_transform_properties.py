"""Property-based tests of the big invariant: *any* legal combination of
layouts and loop schedules preserves operator semantics.

This is the guarantee the paper's transformation module rests on -- layout
changes are compiled, not hand-ported, so they must never change results.
Hypothesis drives randomized layout chains, template configurations and
loop schedules through the full lower+execute pipeline against the numpy
reference.
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.reference import conv2d_ref, evaluate_compute
from repro.exec.single_op import run_compute
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.layout.templates import template_for
from repro.lower.lower import lower_compute
from repro.ops.conv import conv2d
from repro.ops.gemm import gemm
from repro.tuning.loop_space import LoopSpace

rng = np.random.default_rng(0)

_X = rng.standard_normal((1, 4, 10, 10))
_K = rng.standard_normal((8, 4, 3, 3))
_REF = conv2d_ref(_X, _K, 1)


def _conv():
    return conv2d(Tensor("X", (1, 4, 10, 10)), Tensor("K", (8, 4, 3, 3)), name="pc")


def _random_basic_layout(data, shape):
    lay = Layout(shape)
    for _ in range(data.draw(st.integers(0, 3))):
        kind = data.draw(st.sampled_from(["split", "reorder"]))
        dims = lay.dims
        if kind == "split":
            cands = [i for i, d in enumerate(dims) if d.size >= 4 and d.size % 2 == 0]
            if not cands:
                continue
            i = data.draw(st.sampled_from(cands))
            lay = lay.split(i, [dims[i].size // 2, 2])
        else:
            perm = data.draw(st.permutations(range(len(dims))))
            lay = lay.reorder(list(perm))
    return lay


@given(st.data())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_basic_layouts_preserve_conv(data):
    comp = _conv()
    layouts = {
        "pc.out": _random_basic_layout(data, comp.output.shape),
        "X": _random_basic_layout(data, (1, 4, 10, 10)),
        "K": _random_basic_layout(data, (8, 4, 3, 3)),
    }
    got = run_compute(comp, {"X": _X, "K": _K}, layouts)
    assert np.allclose(got, _REF)


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_template_configs_preserve_conv(seed):
    comp = _conv()
    tpl = template_for(comp)
    cfg = tpl.space().sample(random.Random(seed))
    got = run_compute(comp, {"X": _X, "K": _K}, tpl.instantiate(cfg))
    assert np.allclose(got, _REF)


@given(st.integers(0, 10_000))
@settings(max_examples=25, deadline=None)
def test_random_schedules_preserve_conv(seed):
    comp = _conv()
    space = LoopSpace(lower_compute(comp))
    cfg = space.space().sample(random.Random(seed))
    got = run_compute(comp, {"X": _X, "K": _K}, {}, space.schedule(cfg))
    assert np.allclose(got, _REF)


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_random_joint_configs_preserve_conv(seed):
    """Layout AND schedule randomized together (the joint space)."""
    r = random.Random(seed)
    comp = _conv()
    tpl = template_for(comp)
    layouts = tpl.instantiate(tpl.space().sample(r))
    space = LoopSpace(lower_compute(comp, layouts))
    sched = space.schedule(space.space().sample(r))
    got = run_compute(comp, {"X": _X, "K": _K}, layouts, sched)
    assert np.allclose(got, _REF)


@given(st.integers(0, 10_000))
@settings(max_examples=15, deadline=None)
def test_random_gemm_joint_configs(seed):
    r = random.Random(seed)
    a = rng.standard_normal((8, 12))
    b = rng.standard_normal((12, 16))
    comp = gemm(Tensor("A", (8, 12)), Tensor("B", (12, 16)), name="pg")
    tpl = template_for(comp)
    layouts = tpl.instantiate(tpl.space().sample(r))
    space = LoopSpace(lower_compute(comp, layouts))
    sched = space.schedule(space.space().sample(r))
    got = run_compute(comp, {"A": a, "B": b}, layouts, sched)
    assert np.allclose(got, a @ b)


@given(st.integers(2, 5), st.integers(1, 4), st.integers(1, 3))
@settings(max_examples=20, deadline=None)
def test_unfold_covers_all_windows(tile_windows, stride, kernel_minus1):
    """Every sliding window lands inside its unfold tile (Eq. 1 coverage)."""
    kernel = kernel_minus1 + 1
    windows = tile_windows * 3
    size = stride * (windows - 1) + kernel
    lay = Layout((size,), ["H"]).unfold(
        "H", stride * (tile_windows - 1) + kernel, stride * tile_windows
    )
    from repro.layout.primitives import RewriteContext
    from repro.ir.expr import Var

    ctx = RewriteContext({"i": windows, "r": kernel}, {"r"})
    t_expr, b_expr = lay.rewrite_access([Var("i") * stride + Var("r")], ctx)
    arr = np.arange(float(size))
    phys = lay.materialize(arr)
    for i in range(windows):
        for r in range(kernel):
            env = {"i": i, "r": r}
            t, b = t_expr.evaluate(env), b_expr.evaluate(env)
            assert 0 <= t < phys.shape[0] and 0 <= b < phys.shape[1]
            assert phys[t, b] == arr[i * stride + r]


@given(st.data())
@settings(max_examples=20, deadline=None)
def test_evaluate_compute_matches_lowered_identity(data):
    """The two oracles agree on elementwise chains with random shapes."""
    from repro.ops.elementwise import relu, scale_shift

    n = data.draw(st.integers(1, 3))
    c = data.draw(st.sampled_from([2, 4, 6]))
    h = data.draw(st.integers(2, 6))
    t = Tensor("t", (n, c, h, h))
    comp = relu(t, name="r")
    x = np.asarray(data.draw(st.just(0))) + rng.standard_normal((n, c, h, h))
    a = evaluate_compute(comp, {"t": x})
    b = run_compute(comp, {"t": x})
    assert np.allclose(a, b)
