"""Search-space abstractions: divisors, ParamSpec, ConfigSpace."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuning.space import ConfigSpace, ParamSpec, divisors, nearest_choice


class TestDivisors:
    def test_basic(self):
        assert divisors(12) == [1, 2, 3, 4, 6, 12]
        assert divisors(1) == [1]
        assert divisors(7) == [1, 7]

    def test_square(self):
        assert divisors(16) == [1, 2, 4, 8, 16]

    def test_invalid(self):
        with pytest.raises(ValueError):
            divisors(0)

    @given(st.integers(1, 2000))
    def test_all_divide(self, n):
        ds = divisors(n)
        assert all(n % d == 0 for d in ds)
        assert ds == sorted(set(ds))
        assert ds[0] == 1 and ds[-1] == n


class TestParamSpec:
    def test_from_unit_eq2(self):
        """Eq. 2: F = R(D * a) rounded onto the divisor set."""
        p = ParamSpec("f", divisors(32))
        assert p.from_unit(0.0) == 1
        assert p.from_unit(1.0) == 32
        assert p.from_unit(0.5) == 16

    def test_from_unit_non_numeric(self):
        p = ParamSpec("x", ["a", "b", "c"])
        assert p.from_unit(0.0) == "a"
        assert p.from_unit(0.99) == "c"

    def test_neighbors(self):
        p = ParamSpec("f", [1, 2, 4, 8])
        assert p.neighbors(2) == [1, 4]
        assert p.neighbors(1) == [2]
        assert p.neighbors(8) == [4]

    def test_empty_choices_rejected(self):
        with pytest.raises(ValueError):
            ParamSpec("x", [])

    def test_nearest_choice(self):
        assert nearest_choice([1, 2, 4, 8], 5) == 4
        assert nearest_choice([1, 2, 4, 8], 6) == 4  # ties break low


class TestConfigSpace:
    def make(self):
        return ConfigSpace(
            [ParamSpec("a", [1, 2, 4]), ParamSpec("b", [0, 1]), ParamSpec("c", [3])]
        )

    def test_size_default(self):
        sp = self.make()
        assert sp.size() == 6
        assert sp.default() == {"a": 1, "b": 0, "c": 3}

    def test_sample_valid(self):
        sp = self.make()
        rng = random.Random(0)
        for _ in range(20):
            sp.validate(sp.sample(rng))

    def test_validate_rejects(self):
        sp = self.make()
        with pytest.raises(KeyError):
            sp.validate({"a": 1})
        with pytest.raises(ValueError):
            sp.validate({"a": 5, "b": 0, "c": 3})

    def test_mutate_stays_valid(self):
        sp = self.make()
        rng = random.Random(1)
        cfg = sp.default()
        for _ in range(30):
            cfg = sp.mutate(cfg, rng, n=2)
            sp.validate(cfg)

    def test_crossover(self):
        sp = self.make()
        rng = random.Random(2)
        a = {"a": 1, "b": 0, "c": 3}
        b = {"a": 4, "b": 1, "c": 3}
        child = sp.crossover(a, b, rng)
        sp.validate(child)

    def test_concat_and_signature(self):
        sp = self.make()
        sp2 = ConfigSpace([ParamSpec("d", [9])])
        joint = sp.concat(sp2)
        assert len(joint) == 4
        cfg = joint.default()
        assert joint.signature(cfg) == (1, 0, 3, 9)

    def test_duplicate_param_rejected(self):
        with pytest.raises(ValueError):
            ConfigSpace([ParamSpec("a", [1]), ParamSpec("a", [2])])
