"""Machine substrate: cache simulator invariants + analytical latency model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.lower.lower import lower_compute
from repro.machine.cache import AddressMap, Cache, CacheHierarchy
from repro.machine.latency import estimate_program, estimate_stage
from repro.machine.spec import CacheLevel, MachineSpec, get_machine
from repro.ir.nest import Program
from repro.ops.conv import conv2d
from repro.ops.elementwise import relu


def small_l1(prefetch=4):
    return CacheLevel("L1", 4 * 1024, 64, 4, 4, prefetch_lines=prefetch)


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(small_l1(prefetch=1))
        assert not c.access_addr(0)
        assert c.access_addr(4)  # same line
        assert c.stats.misses == 1 and c.stats.hits == 1

    def test_prefetch_brings_next_lines(self):
        c = Cache(small_l1(prefetch=4))
        c.access_addr(0)  # miss, prefetches lines 1..3
        assert c.access_addr(64) and c.access_addr(128) and c.access_addr(192)
        assert c.stats.prefetch_hits == 3
        assert not c.access_addr(64 * 4)  # beyond prefetch window

    def test_sequential_stream_miss_rate(self):
        """Sequential access misses once per prefetch window (Table 2's
        layout-tiling case: misses = lines / prefetch_lines)."""
        c = Cache(small_l1(prefetch=4))
        n_lines = 32
        for addr in range(0, n_lines * 64, 4):
            c.access_addr(addr)
        assert c.stats.misses == n_lines // 4

    def test_strided_stream_misses_every_line(self):
        """Large-stride access defeats the sequential prefetcher (Table 2's
        loop-tiling case)."""
        c = Cache(small_l1(prefetch=4))
        for i in range(32):
            c.access_addr(i * 64 * 16)  # 1 KiB stride
        assert c.stats.misses == 32

    def test_lru_eviction(self):
        level = CacheLevel("L1", 2 * 64, 64, 2, 4, prefetch_lines=1)  # 2 lines
        c = Cache(level)
        c.access_line(0)
        c.access_line(2)  # same set (1 set total? size/(line*assoc)=1)
        c.access_line(0)  # refresh 0
        c.access_line(4)  # evicts 2 (LRU)
        assert c.access_line(0)
        assert not c.access_line(2)

    def test_capacity_working_set(self):
        c = Cache(small_l1(prefetch=1))  # 4 KiB = 64 lines
        for _ in range(3):
            for line in range(32):
                c.access_line(line)
        assert c.stats.misses == 32  # fits: only cold misses

    @given(st.lists(st.integers(0, 4096), min_size=1, max_size=300))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, addrs):
        c = Cache(small_l1())
        for a in addrs:
            c.access_addr(a)
        s = c.stats
        assert s.hits + s.misses == s.accesses == len(addrs)
        assert s.prefetch_hits <= s.hits
        assert s.lines_fetched >= s.misses

    def test_hierarchy_cascade(self):
        m = get_machine("intel_cpu")
        h = CacheHierarchy(m)
        lvl = h.access(0)
        assert lvl == len(h.levels)  # cold -> DRAM
        assert h.access(0) == 0      # now in L1
        assert h.dram_accesses == 1

    def test_address_map_disjoint(self):
        amap = AddressMap(64)
        a = amap.base("a", 100)
        b = amap.base("b", 100)
        assert a != b and abs(a - b) >= 128
        assert amap.base("a", 100) == a  # stable


def conv_stage(machine, schedule=None, layouts=None, channels=32, hw=30):
    inp = Tensor("I", (1, channels, hw, hw))
    ker = Tensor("K", (channels, channels, 3, 3))
    comp = conv2d(inp, ker, name="c")
    return lower_compute(comp, layouts or {}, schedule)


class TestLatencyModel:
    def setup_method(self):
        self.m = get_machine("intel_cpu")

    def test_deterministic(self):
        s = conv_stage(self.m)
        a = estimate_stage(s, self.m).total_cycles
        b = estimate_stage(s, self.m).total_cycles
        assert a == b

    def test_more_work_costs_more(self):
        small = conv_stage(self.m, channels=16)
        big = conv_stage(self.m, channels=32)
        assert (
            estimate_stage(big, self.m).total_cycles
            > estimate_stage(small, self.m).total_cycles
        )

    def test_parallel_speedup(self):
        base = conv_stage(self.m)
        par = conv_stage(
            self.m,
            LoopSchedule().split("s1", [8, 4]).reorder(
                ["s0", "s1.0", "s2", "s3", "ri", "rh", "rw", "s1.1"]
            ).parallel("s0").parallel("s1.0"),
        )
        c_base = estimate_stage(base, self.m)
        c_par = estimate_stage(par, self.m)
        assert c_par.parallelism > 1
        assert c_par.total_cycles < c_base.total_cycles

    def test_vectorize_helps_contiguous(self):
        lay = Layout((1, 32, 28, 28), ["N", "O", "H", "W"]).reorder(
            ["N", "H", "W", "O"]
        )
        ker_lay = Layout((32, 32, 3, 3), ["O", "I", "R", "S"]).reorder(
            ["R", "S", "I", "O"]  # RSIO pairs with NHWO (paper Table 3)
        )
        layouts = {"c.out": lay, "K": ker_lay}
        plain = conv_stage(self.m, None, layouts)
        sched = LoopSchedule().reorder(
            ["s0", "s1", "s2", "ri", "rh", "rw", "s3"]
        ).vectorize("s3")
        vec = conv_stage(self.m, sched, layouts)
        assert (
            estimate_stage(vec, self.m).total_cycles
            < estimate_stage(plain, self.m).total_cycles
        )

    def test_gpu_requires_parallelism(self):
        gpu = get_machine("nvidia_gpu")
        serial = conv_stage(gpu)
        par = conv_stage(
            gpu,
            LoopSchedule().split("s2", [14, 2]).reorder(
                ["s1", "s2.0", "s0", "s3", "ri", "rh", "rw", "s2.1"]
            ).parallel("s1").parallel("s2.0"),
        )
        assert (
            estimate_stage(par, gpu).total_cycles
            < estimate_stage(serial, gpu).total_cycles / 4
        )

    def test_fusion_reduces_program_latency(self):
        inp = Tensor("I", (1, 32, 30, 30))
        ker = Tensor("K", (32, 32, 3, 3))
        comp = conv2d(inp, ker, name="c")
        act = relu(comp.output, name="r")
        conv_stage_ = lower_compute(comp)
        relu_stage = lower_compute(act)
        unfused = Program([conv_stage_, relu_stage])

        fused_sched = LoopSchedule().set_fuse_group("g")
        conv_f = lower_compute(comp, {}, fused_sched)
        relu_f = lower_compute(act, {}, fused_sched)
        fused = Program([conv_f, relu_f])
        assert estimate_program(fused, self.m) < estimate_program(unfused, self.m)

    def test_counters_populated(self):
        cost = estimate_stage(conv_stage(self.m), self.m)
        assert cost.instructions > 0
        assert cost.loads > 0
        assert cost.level_misses.get("DRAM", 0) >= 0
        assert cost.serial_cycles == pytest.approx(
            cost.compute_cycles + cost.memory_cycles + cost.overhead_cycles
        )

    def test_machine_presets(self):
        for name in ("intel_cpu", "nvidia_gpu", "arm_cpu"):
            m = get_machine(name)
            assert m.cores >= 1 and m.vector_lanes >= 1
            assert m.caches[0].line_bytes in (64, 128)
        with pytest.raises(KeyError):
            get_machine("tpu")

    def test_seconds_conversion(self):
        m = get_machine("arm_cpu")
        assert m.cycles_to_seconds(m.freq_ghz * 1e9) == pytest.approx(1.0)
