"""Measurement engine: batching, budget accounting, caching, degradation."""

import math

import pytest

from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.tuning.baselines import tune_alt, tune_ansor_like
from repro.tuning.measurer import (
    DiskCache,
    MeasureOptions,
    Measurer,
    evaluate_candidate,
)
from repro.tuning.records import record_from_result
from repro.tuning.task import BudgetExhausted, TuningTask


def small_conv():
    inp = Tensor("I", (1, 8, 12, 12))
    ker = Tensor("K", (8, 8, 3, 3))
    return conv2d(inp, ker, name="c")


def make_task(budget, **kw):
    kw.setdefault("measure", MeasureOptions(jobs=1, cache_dir=None))
    return TuningTask(small_conv(), get_machine("intel_cpu"), budget, **kw)


def distinct_candidates(task, n):
    """n candidates with distinct signatures in the task's default layout."""
    loop_space = task.loop_space_for({})
    out, seen = [], set()
    for cfg in loop_space.heuristic_configs():
        sched = loop_space.schedule(cfg)
        sig = task._signature({}, sched)
        if sig not in seen:
            seen.add(sig)
            out.append(({}, sched))
    import random

    rng = random.Random(0)
    space = loop_space.space()
    while len(out) < n:
        sched = loop_space.schedule(space.sample(rng))
        sig = task._signature({}, sched)
        if sig not in seen:
            seen.add(sig)
            out.append(({}, sched))
    return out[:n]


class TestBudgetAccounting:
    def test_cache_hits_are_free_and_leave_no_history(self):
        task = make_task(budget=10)
        (c0, c1) = distinct_candidates(task, 2)
        batch = task.measure_batch([c0, c0, c1])
        assert len(batch.latencies) == 3
        assert batch.latencies[0] == batch.latencies[1]
        assert not batch.exhausted
        assert task.measurements == 2
        assert len(task.history) == 2
        assert task.measurer.stats.task_cache_hits == 1
        assert task.measurer.stats.budget_consumed == 2
        # re-measuring is free: no new history, no budget
        again = task.measure_batch([c0, c1])
        assert again.latencies == batch.latencies[1:]
        assert task.measurements == 2
        assert len(task.history) == 2

    def test_budget_cut_mid_batch_keeps_state_consistent(self):
        task = make_task(budget=2)
        cands = distinct_candidates(task, 4)
        batch = task.measure_batch(cands)
        assert batch.exhausted
        assert len(batch.latencies) == 2
        assert task.measurements == 2
        assert len(task.history) == 2
        assert task.best_latency == min(batch.latencies)
        assert task.best_record is not None
        # history indices follow the serial convention
        assert [i for i, _ in task.history] == [1, 2]
        # best-so-far column is monotone non-increasing
        bests = [b for _, b in task.history]
        assert bests == sorted(bests, reverse=True)

    def test_single_measure_raises_when_exhausted(self):
        task = make_task(budget=1)
        (c0, c1) = distinct_candidates(task, 2)
        task.measure(*c0)
        with pytest.raises(BudgetExhausted):
            task.measure(*c1)
        # cached candidates stay free even past exhaustion
        assert math.isfinite(task.measure(*c0))

    def test_empty_batch_is_a_noop(self):
        task = make_task(budget=2)
        batch = task.measure_batch([])
        assert batch.latencies == [] and not batch.exhausted
        assert task.measurements == 0


class TestParallelDeterminism:
    def test_jobs_do_not_change_tuned_results(self):
        comp = small_conv()
        machine = get_machine("intel_cpu")
        serial = tune_alt(
            comp, machine, budget=48, seed=0,
            measure=MeasureOptions(jobs=1, cache_dir=None),
        )
        pooled = tune_alt(
            comp, machine, budget=48, seed=0,
            measure=MeasureOptions(jobs=2, cache_dir=None),
        )
        assert serial.best_latency == pooled.best_latency
        assert serial.history == pooled.history
        assert serial.measurements == pooled.measurements

    def test_pool_unavailable_falls_back_to_serial(self, monkeypatch):
        from repro.tuning import measurer as measurer_mod

        def broken_pool(jobs):
            raise OSError("no processes for you")

        monkeypatch.setattr(measurer_mod, "_shared_pool", broken_pool)
        result = tune_ansor_like(
            small_conv(), get_machine("intel_cpu"), budget=16, seed=0,
            measure=MeasureOptions(jobs=2, cache_dir=None),
        )
        assert math.isfinite(result.best_latency)
        assert result.telemetry["pool_evaluations"] == 0
        assert result.telemetry["serial_evaluations"] > 0
        assert result.telemetry["pool_failures"] >= 1

    def test_worker_crash_becomes_inf_not_abort(self):
        # every attempt raises in-worker -> each candidate retries up to
        # max_candidate_retries then quarantines as inf; the run never aborts
        task = make_task(budget=8, measure=MeasureOptions(jobs=2, cache_dir=None))
        cands = distinct_candidates(task, 3)

        class CrashFuture:
            def result(self, timeout=None):
                raise RuntimeError("worker died")

        class CrashPool:
            def submit(self, fn, *args):
                return CrashFuture()

        task.measurer._pool = lambda: CrashPool()
        batch = task.measure_batch(cands)
        assert len(batch.latencies) == 3
        assert all(lat == math.inf for lat in batch.latencies)
        retries = task.measurer.options.max_candidate_retries
        assert task.measurer.stats.retries == 3 * retries
        assert task.measurer.stats.quarantined == 3
        assert task.measurer.stats.errors == 3 * (retries + 1)
        # quarantine is per-candidate; later batches still measure fine
        task.measurer._pool = lambda: None
        more = task.measure_batch(distinct_candidates(task, 5)[3:])
        assert all(math.isfinite(lat) for lat in more.latencies)


class TestDiskCache:
    def test_warm_cache_skips_all_fresh_evaluations(self, tmp_path):
        comp = small_conv()
        machine = get_machine("intel_cpu")
        opts = dict(budget=24, seed=0)
        cold = tune_ansor_like(
            comp, machine,
            measure=MeasureOptions(jobs=1, cache_dir=str(tmp_path)), **opts,
        )
        assert cold.telemetry["fresh_evaluations"] > 0
        assert cold.telemetry["disk_cache_hits"] == 0
        warm = tune_ansor_like(
            comp, machine,
            measure=MeasureOptions(jobs=1, cache_dir=str(tmp_path)), **opts,
        )
        assert warm.telemetry["fresh_evaluations"] == 0
        assert warm.telemetry["disk_cache_hits"] > 0
        assert warm.best_latency == cold.best_latency
        assert warm.history == cold.history

    def test_cached_values_match_direct_evaluation(self, tmp_path):
        task = make_task(
            budget=4, measure=MeasureOptions(jobs=1, cache_dir=str(tmp_path))
        )
        cands = distinct_candidates(task, 2)
        batch = task.measure_batch(cands)
        for (lay, sched), lat in zip(cands, batch.latencies):
            assert lat == evaluate_candidate(task.comp, task.machine, lay, sched)

    def test_inf_round_trips_through_jsonl(self, tmp_path):
        comp = small_conv()
        machine = get_machine("intel_cpu")
        cache = DiskCache(str(tmp_path), machine, comp)
        cache.put("k-inf", math.inf)
        cache.put("k-fin", 1.5e-6)
        fresh = DiskCache(str(tmp_path), machine, comp)
        assert fresh.get("k-inf") == math.inf
        assert fresh.get("k-fin") == 1.5e-6

    def test_corrupt_lines_are_skipped(self, tmp_path):
        comp = small_conv()
        machine = get_machine("intel_cpu")
        cache = DiskCache(str(tmp_path), machine, comp)
        cache.put("good", 2.0e-6)
        with open(cache.path, "a") as f:
            f.write("{not json}\n")
            f.write('{"k": "no-value"}\n')
        fresh = DiskCache(str(tmp_path), machine, comp)
        assert fresh.get("good") == 2.0e-6
        assert len(fresh) == 1

    def test_disabled_cache_never_touches_disk(self, tmp_path):
        task = TuningTask(
            small_conv(), get_machine("intel_cpu"), budget=2,
            measure=MeasureOptions(jobs=1, cache_dir=None),
        )
        assert task.measurer._disk is None
        task.measure_batch(distinct_candidates(task, 2))
        assert list(tmp_path.iterdir()) == []


class TestTelemetry:
    def test_tune_result_carries_stats(self):
        result = tune_ansor_like(
            small_conv(), get_machine("intel_cpu"), budget=12, seed=0,
            measure=MeasureOptions(jobs=1, cache_dir=None),
        )
        t = result.telemetry
        assert t["fresh_evaluations"] + t["disk_cache_hits"] >= t["budget_consumed"]
        assert t["budget_consumed"] == result.measurements
        assert 0.0 <= t["cache_hit_rate"] <= 1.0
        assert t["wall_time_s"] >= 0.0

    def test_record_round_trips_telemetry(self):
        result = tune_ansor_like(
            small_conv(), get_machine("intel_cpu"), budget=8, seed=0,
            measure=MeasureOptions(jobs=1, cache_dir=None),
        )
        record = record_from_result(small_conv(), "intel_cpu", result)
        from repro.tuning.records import TuneRecord

        back = TuneRecord.from_json(record.to_json())
        assert back.telemetry == record.telemetry
        assert back.telemetry["budget_consumed"] == result.measurements


class TestMeasurerUnit:
    def test_measurer_bound_to_task_shares_bookkeeping(self):
        task = make_task(budget=4)
        assert isinstance(task.measurer, Measurer)
        (c0,) = distinct_candidates(task, 1)
        lat = task.measure(*c0)
        assert task.measurer.stats.requests == 1
        assert task._cache[task._signature(*c0)] == lat
