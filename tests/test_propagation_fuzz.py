"""Fuzz suite for layout propagation (Algorithm 1).

``test_propagation`` pins the paper's hand-drawn examples; here randomized
elementwise chains are grown around a complex anchor (C2D or GMM) and the
algorithm's guarantees are checked on every one of them:

- a basic output layout replicates across the whole pure-elementwise path
  with **zero** conversion operators inserted;
- replication preserves fusion: every producer/consumer pair on the chain
  still lands in one fuse group (the Fig. 6 overhead never appears);
- propagation stops at the next complex operator and at advanced
  (padded/unfolded) layouts, again without inserting conversions;
- executing the transformed graph node by node under the propagated
  layouts matches the unpropagated logical reference exactly.
"""

import random

import numpy as np
import pytest

from repro.exec.graph_runner import random_inputs, run_graph_reference
from repro.exec.single_op import run_compute
from repro.graph.builder import GraphBuilder
from repro.layout.layout import Layout
from repro.layout.propagation import PropagationEngine
from repro.pipeline import _assign_fuse_groups

N_SEEDS = 20

_ELEMENTWISE = ["relu", "scale", "bias", "add_const"]


def _grow_chain(b: GraphBuilder, x, rng: random.Random, n: int):
    """Append ``n`` random elementwise ops to tensor ``x``."""
    for _ in range(n):
        kind = rng.choice(_ELEMENTWISE)
        if kind == "relu":
            x = b.relu(x)
        elif kind == "scale":
            x = b.scale(x, rng.choice([0.5, 2.0, -1.5]))
        elif kind == "bias":
            x = b.bias_add(x, "channel")
        else:
            x = b.add(x, b.const(f"c{rng.randrange(1 << 30)}", x.shape))
    return x


def chain_graph(seed: int, tail: bool = False):
    """input -> anchor (C2D, no pad node) -> random elementwise chain
    [-> second C2D anchor when ``tail``]."""
    rng = random.Random(seed)
    b = GraphBuilder(f"fuzz{seed}")
    x = b.input((1, 4, 8, 8))
    x = b.conv2d(x, 8, 3, pad=0)
    x = _grow_chain(b, x, rng, rng.randint(1, 4))
    if tail:
        x = b.conv2d(x, 8, 1, pad=0)
    return b.build()


def _anchor(graph):
    return next(n for n in graph.nodes if "conv" in n.tags)


def _chain_after(graph, node):
    """Follow single-consumer elementwise links downstream of ``node``."""
    chain = []
    cur = node
    while True:
        consumers = graph.consumers_of(cur.output.name)
        if len(consumers) != 1 or not consumers[0].is_elementwise:
            return chain
        cur = consumers[0]
        chain.append(cur)


def tiled(shape):
    lay = Layout(shape, ["N", "O", "H", "W"])
    return lay.split("O", [shape[1] // 2, 2]).reorder(
        ["N", "O.0", "H", "W", "O.1"]
    )


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_elementwise_chain_replicates_without_conversion(seed):
    g = chain_graph(seed)
    anchor = _anchor(g)
    chain = _chain_after(g, anchor)
    assert chain, "graph must have an elementwise tail"
    n_nodes = len(g.nodes)
    engine = PropagationEngine(g)
    lay = tiled(anchor.output.shape)
    engine.assign_operator_layouts(anchor, {anchor.output.name: lay})
    # pure-elementwise path: no conversion operator anywhere
    assert engine.state.conversions == []
    assert len(g.nodes) == n_nodes
    for node in chain:
        got = engine.state.layouts.get(node.output.name)
        assert got is not None, f"{node.name} did not receive the layout"
        assert got.signature() == lay.signature(), node.name


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_replication_preserves_fusion(seed):
    g = chain_graph(seed)
    anchor = _anchor(g)
    chain = _chain_after(g, anchor)
    engine = PropagationEngine(g)
    engine.assign_operator_layouts(
        anchor, {anchor.output.name: tiled(anchor.output.shape)}
    )
    groups = _assign_fuse_groups(g, engine.state.layouts)
    # the whole anchor+chain shares one fuse group, exactly as it would
    # have with identity layouts (replication keeps the loop nests aligned)
    baseline = _assign_fuse_groups(g, {})
    want = {anchor.name} | {n.name for n in chain}
    for name in want:
        assert (name in groups) == (name in baseline), name
    assert len({groups[n] for n in want if n in groups}) <= 1


@pytest.mark.parametrize("seed", range(N_SEEDS))
def test_chain_outputs_match_unpropagated_reference(seed):
    """Node-by-node execution under the propagated layouts reproduces the
    logical reference: propagation transforms data placement, never values."""
    g = chain_graph(seed)
    anchor = _anchor(g)
    engine = PropagationEngine(g)
    engine.assign_operator_layouts(
        anchor, {anchor.output.name: tiled(anchor.output.shape)}
    )
    values = random_inputs(g, seed=seed + 100)
    ref = run_graph_reference(g, values)
    for node in g.nodes:
        node_inputs = {t.name: values[t.name] for t in node.inputs}
        out = run_compute(node, node_inputs, engine.state.layouts)
        assert np.allclose(out, ref[node.output.name], atol=1e-7), node.name
        values[node.output.name] = out


@pytest.mark.parametrize("seed", range(N_SEEDS // 2))
def test_propagation_stops_at_complex_consumer(seed):
    g = chain_graph(seed, tail=True)
    anchors = [n for n in g.nodes if "conv" in n.tags]
    first, last = anchors[0], anchors[-1]
    chain = _chain_after(g, first)
    engine = PropagationEngine(g)
    lay = tiled(first.output.shape)
    engine.assign_operator_layouts(first, {first.output.name: lay})
    assert engine.state.conversions == []
    # the elementwise prefix replicated ...
    for node in chain:
        assert (
            engine.state.layouts[node.output.name].signature() == lay.signature()
        ), node.name
    # ... but the second complex operator was left untouched
    assert last.output.name not in engine.state.layouts


@pytest.mark.parametrize("seed", range(N_SEEDS // 2))
def test_advanced_layout_blocks_replication(seed):
    """Constraint 1: unfolded (data-duplicating) layouts never propagate
    past the operator that owns them -- and still insert no conversions."""
    g = chain_graph(seed)
    anchor = _anchor(g)
    chain = _chain_after(g, anchor)
    engine = PropagationEngine(g)
    shape = anchor.output.shape
    lay = Layout(shape, ["N", "O", "H", "W"]).unfold("H", 4, 2)
    engine.assign_operator_layouts(anchor, {anchor.output.name: lay})
    assert engine.state.conversions == []
    for node in chain:
        assert node.output.name not in engine.state.layouts, node.name
