"""The generated-workload fuzzer: generator, oracle, minimizer, corpus.

Four properties carry the subsystem:

* determinism -- the same seed yields a byte-identical spec in any
  process (``PYTHONHASHSEED`` included), and a replayed spec rebuilds a
  graph with the *same* structural fingerprint;
* the oracle actually discriminates -- pinned seeds pass, planted
  violations fail with the right check name;
* failures are durable -- minimized, hash-stamped, recorded into the run
  registry, and bit-identically replayable;
* the corpus exporter emits data the tuning stack can really consume
  (``CostModel.seed`` format, rebuildable ComputeDefs).
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import _single_op
from repro.machine.spec import get_machine
from repro.obs.runstore import RunRecord, RunStore
from repro.testing import (
    GraphSpec,
    SpecError,
    generate_spec,
    graph_fingerprint,
    minimize_spec,
    replay_failure,
    run_fuzz,
)
from repro.testing import fuzz as fuzz_mod
from repro.testing.fuzz import _drop_op, export_corpus
from repro.testing.generator import FAMILIES, _shape_after
from repro.testing.oracle import (
    OracleFailure,
    OracleOptions,
    OracleReport,
    check_numerics,
    run_oracle,
)
from repro.tuning.baselines import tune_alt
from repro.tuning.cost_model import CostModel
from repro.tuning.measurer import MeasureOptions
from repro.tuning.pretrain import corpus_cost_model_seed, corpus_workloads
from repro.tuning.scheduler import tune_network

MACHINE = get_machine("intel_cpu")
SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

FAST = OracleOptions(compile_budget=16, tune_budget=24)


def src_env(hash_seed):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env["PYTHONHASHSEED"] = str(hash_seed)
    return env


# ---------------------------------------------------------------------------
# generator: determinism, round-trip, build validity
# ---------------------------------------------------------------------------

def test_same_seed_same_spec():
    for seed in range(30):
        a, b = generate_spec(seed), generate_spec(seed)
        assert a.to_json() == b.to_json()
        assert a.spec_hash() == b.spec_hash()


def test_spec_roundtrip_and_replay_identity():
    for seed in (0, 7, 23, 101):
        spec = generate_spec(seed)
        back = GraphSpec.from_json(spec.to_json())
        assert back.to_json() == spec.to_json()
        assert back.spec_hash() == spec.spec_hash()
        assert graph_fingerprint(back.build()) == \
            graph_fingerprint(spec.build())


def test_spec_version_gate():
    data = generate_spec(0).to_dict()
    data["version"] = 99
    with pytest.raises(SpecError, match="version"):
        GraphSpec.from_dict(data)


def test_every_seed_builds_with_a_complex_anchor():
    seen_families = set()
    for seed in range(60):
        spec = generate_spec(seed)
        graph = spec.build()
        assert graph.complex_nodes(), spec
        seen_families.add(spec.family)
    assert len(seen_families) >= 3  # the weighted draw really mixes


def test_shape_after_mirrors_builder():
    """The generator's shape oracle must agree with the real builder, op
    by op -- a drift here silently starves whole op kinds of coverage."""
    for seed in range(40):
        spec = generate_spec(seed)
        graph = spec.build()
        shape = tuple(spec.input_shape)
        by_name = {n.output.name: n for n in graph.nodes}
        outputs = [n.output for n in graph.nodes
                   if n.name.startswith("fuzz") or True]
        assert outputs  # graph is non-trivial
        for op in spec.ops:
            shape = _shape_after(shape, op)
        # final predicted shape matches the graph's terminal tensor
        terminal = [t for t in (n.output for n in graph.nodes)
                    if not graph.consumers_of(t.name)]
        assert tuple(shape) in {tuple(t.shape) for t in terminal}, \
            (spec, shape, by_name.keys())


def test_family_filter_and_unknown_family():
    for seed in range(20):
        assert generate_spec(seed, families=["matrix"]).family == "matrix"
    with pytest.raises(ValueError, match="unknown family"):
        generate_spec(0, families=["imaginary"])
    assert set(FAMILIES) >= {"image", "matrix", "seq"}


def test_residual_out_of_range_and_shape_mismatch_rejected():
    spec = GraphSpec(seed=1, family="image", input_shape=(1, 4, 8, 8), ops=[
        {"kind": "conv2d", "out_channels": 4, "kernel": 3, "stride": 1,
         "pad": 1, "groups": 1, "dilation": 1},
        {"kind": "residual", "from": 9},
    ])
    with pytest.raises(SpecError, match="out of range"):
        spec.build()
    spec.ops[1] = {"kind": "residual", "from": 0}
    spec.ops[0]["out_channels"] = 6  # shapes now differ from the input
    with pytest.raises(SpecError, match="shape mismatch"):
        spec.build()


def test_spec_without_complex_op_rejected():
    spec = GraphSpec(seed=1, family="image", input_shape=(1, 4, 8, 8),
                     ops=[{"kind": "act", "fn": "relu"}])
    with pytest.raises(SpecError, match="no complex operator"):
        spec.build()


def test_unknown_op_kind_rejected():
    spec = GraphSpec(seed=1, family="image", input_shape=(1, 4, 8, 8),
                     ops=[{"kind": "warp_drive"}])
    with pytest.raises(SpecError, match="unknown op kind"):
        spec.build()


# ---------------------------------------------------------------------------
# satellite: cross-process seed reproducibility
# ---------------------------------------------------------------------------

_SUBPROCESS_HASH = """\
import hashlib
from repro.testing import generate_spec
h = hashlib.sha256()
for seed in range(25):
    h.update(generate_spec(seed).to_json().encode())
print(h.hexdigest())
"""

_SUBPROCESS_REPLAY = """\
import sys
from repro.testing import GraphSpec, graph_fingerprint
spec = GraphSpec.from_json(sys.stdin.read())
print(spec.spec_hash())
print(graph_fingerprint(spec.build()))
"""


def test_specs_byte_identical_across_processes():
    """Two subprocesses with *different* PYTHONHASHSEEDs hash the same 25
    generated specs identically -- nothing about generation leaks
    interpreter state."""
    outs = [
        subprocess.run(
            [sys.executable, "-c", _SUBPROCESS_HASH],
            env=src_env(hash_seed), capture_output=True, text=True,
            timeout=120, check=True,
        ).stdout.strip()
        for hash_seed in (0, 4242)
    ]
    assert outs[0] == outs[1]
    assert len(outs[0]) == 64


def test_replayed_spec_rebuilds_identical_graph_in_fresh_process():
    spec = generate_spec(11)
    out = subprocess.run(
        [sys.executable, "-c", _SUBPROCESS_REPLAY],
        input=spec.to_json(), env=src_env(1), capture_output=True,
        text=True, timeout=120, check=True,
    )
    got_hash, got_fp = out.stdout.split()
    assert got_hash == spec.spec_hash()
    assert got_fp == graph_fingerprint(spec.build())


# ---------------------------------------------------------------------------
# oracle: pinned seeds pass, planted violations fail
# ---------------------------------------------------------------------------

def test_oracle_clean_on_pinned_seeds():
    for seed in (0, 3, 5):
        report = run_oracle(generate_spec(seed),
                            checks=("numerics", "propagation"), options=FAST)
        assert report.ok, [f.to_dict() for f in report.failures]
        assert report.checks_run == ["numerics", "propagation"]


def test_oracle_tuned_check_on_pinned_seed():
    report = run_oracle(generate_spec(2), checks=("tuned",), options=FAST)
    assert report.ok, [f.to_dict() for f in report.failures]


def test_oracle_rejects_unknown_check():
    with pytest.raises(ValueError, match="unknown check"):
        run_oracle(generate_spec(0), checks=("vibes",), options=FAST)


def test_numerics_flags_planted_reference_drift(monkeypatch):
    """Perturb the reference evaluator's output for one tensor: the
    node-by-node comparison must name that very node."""
    from repro.exec import graph_runner

    spec = generate_spec(0)
    victim = spec.build().nodes[0]
    real = graph_runner.run_graph_reference

    def skewed(graph, inputs):
        out = real(graph, inputs)
        out[victim.output.name] = out[victim.output.name] + 0.5
        return out

    monkeypatch.setattr("repro.testing.oracle.run_graph_reference", skewed)
    failures = check_numerics(spec, FAST)
    assert failures
    assert any(f.node == victim.name for f in failures)
    assert all(f.check == "numerics" for f in failures)


def test_generated_conv_variants_numerics_and_scheduler():
    """Depthwise + grouped + dilated convs tune end to end through the
    network scheduler and agree with the reference numerics."""
    spec = GraphSpec(seed=5, family="image", input_shape=(1, 4, 10, 10), ops=[
        {"kind": "depthwise", "kernel": 3, "stride": 1, "pad": 2,
         "dilation": 2},
        {"kind": "conv2d", "out_channels": 6, "kernel": 3, "stride": 1,
         "pad": 2, "groups": 2, "dilation": 2},
        {"kind": "act", "fn": "relu"},
    ])
    assert check_numerics(spec, FAST) == []
    result = tune_network(lambda: spec.build(), MACHINE, budget=24, seed=0)
    assert result.network_latency_s <= \
        result.baseline_latency_s * (1 + 1e-9)


@pytest.mark.parametrize("op", ["dep", "grp", "dil"])
def test_conv_variants_tune_alt_end_to_end(op):
    res = tune_alt(_single_op(op, 8, 10), MACHINE, budget=12, seed=0,
                   measure=MeasureOptions(jobs=1, cache_dir=None))
    assert res.best_latency > 0 and res.measurements > 0


# ---------------------------------------------------------------------------
# minimizer: greedy shrink with residual remapping
# ---------------------------------------------------------------------------

def chain_spec():
    return GraphSpec(seed=1, family="image", input_shape=(1, 4, 8, 8), ops=[
        {"kind": "conv2d", "out_channels": 4, "kernel": 3, "stride": 1,
         "pad": 1, "groups": 1, "dilation": 1},
        {"kind": "act", "fn": "relu"},
        {"kind": "scale", "factor": 2.0},
        {"kind": "residual", "from": 1},
        {"kind": "act", "fn": "tanh"},
    ])


def test_drop_op_remaps_residual_references():
    spec = chain_spec()
    dropped = _drop_op(spec, 1)  # remove the relu; refs past it shift down
    assert [op["kind"] for op in dropped.ops] == \
        ["conv2d", "scale", "residual", "act"]
    # the residual pointed at produced[1] (the conv); index 1 survives
    assert dropped.ops[2]["from"] == 1
    dropped2 = _drop_op(spec, 0)  # remove the conv the residual points at
    assert dropped2.ops[2]["from"] == 0  # falls back to the conv's input
    with pytest.raises(SpecError, match="no complex operator"):
        dropped2.build()  # and the candidate is correctly unbuildable


def test_minimize_converges_to_smallest_failing_spec(monkeypatch):
    """Against a synthetic oracle that fails iff a ``scale`` op is present,
    the greedy shrink must strip everything else (the conv stays only
    because specs without a complex op cannot build)."""
    def fake_oracle(spec, checks, options=None):
        failing = any(op["kind"] == "scale" for op in spec.ops)
        fails = [OracleFailure(check="numerics", seed=spec.seed, node=None,
                               message="planted")] if failing else []
        return OracleReport(spec=spec, checks_run=list(checks),
                            failures=fails)

    monkeypatch.setattr(fuzz_mod, "run_oracle", fake_oracle)
    out = minimize_spec(chain_spec(), "numerics", FAST)
    assert [op["kind"] for op in out.ops] == ["conv2d", "scale"]
    out.build()  # the minimized spec is still a valid graph


def test_minimize_respects_eval_budget(monkeypatch):
    calls = {"n": 0}

    def fake_oracle(spec, checks, options=None):
        calls["n"] += 1
        return OracleReport(spec=spec, checks_run=list(checks), failures=[
            OracleFailure(check="numerics", seed=spec.seed, node=None,
                          message="always failing"),
        ])

    monkeypatch.setattr(fuzz_mod, "run_oracle", fake_oracle)
    minimize_spec(chain_spec(), "numerics", FAST, max_evals=3)
    assert calls["n"] <= 3


# ---------------------------------------------------------------------------
# run_fuzz: sweep, recording, replay
# ---------------------------------------------------------------------------

def planted_oracle(bad_seeds):
    def fake_oracle(spec, checks, options=None):
        fails = []
        if spec.seed in bad_seeds:
            fails = [OracleFailure(
                check="numerics", seed=spec.seed, node="n0",
                message="planted failure", details={"max_abs_err": 1.0},
            )]
        return OracleReport(spec=spec, checks_run=list(checks),
                            failures=fails)
    return fake_oracle


def test_run_fuzz_records_minimized_replayable_failures(
        monkeypatch, tmp_path):
    monkeypatch.setattr(fuzz_mod, "run_oracle", planted_oracle({1}))
    store = RunStore(str(tmp_path))
    progress_rows = []
    result = run_fuzz(
        seeds=3, checks=("numerics",), options=FAST, store=store,
        progress=lambda i, seed, n: progress_rows.append((i, seed, n)),
    )
    assert result.seeds_run == 3 and not result.ok
    assert len(result.failures) == 1
    assert progress_rows[-1] == (3, 2, 1)
    payload = result.failures[0]
    assert payload["kind"] == "fuzz_failure"
    assert payload["seed"] == 1 and payload["check"] == "numerics"
    assert payload["spec_hash"] == \
        GraphSpec.from_dict(payload["spec"]).spec_hash()

    # the run registry holds the same payload, and the run is marked failed
    rec = RunRecord(result.run_path)
    assert rec.manifest["status"] == "failed"
    assert rec.failures == [payload]

    # bit-identical replay: same seed -> same spec -> same failure
    report = replay_failure(payload, FAST)
    assert not report.ok
    assert report.failures[0].check == "numerics"
    assert report.spec.spec_hash() == payload["spec_hash"]


def test_run_fuzz_clean_sweep_completes_run(monkeypatch, tmp_path):
    monkeypatch.setattr(fuzz_mod, "run_oracle", planted_oracle(set()))
    result = run_fuzz(seeds=4, checks=("numerics",), options=FAST,
                      store=RunStore(str(tmp_path)))
    assert result.ok and result.seeds_run == 4
    rec = RunRecord(result.run_path)
    assert rec.manifest["status"] == "completed"
    assert rec.failures == []


def test_run_fuzz_fail_fast_and_soak(monkeypatch):
    monkeypatch.setattr(fuzz_mod, "run_oracle", planted_oracle({0}))
    result = run_fuzz(seeds=50, checks=("numerics",), options=FAST,
                      fail_fast=True)
    assert result.seeds_run == 1 and len(result.failures) == 1
    # soak mode: wall-clock bounded, open-ended seed range
    monkeypatch.setattr(fuzz_mod, "run_oracle", planted_oracle(set()))
    result = run_fuzz(soak_s=0.2, checks=("numerics",), options=FAST)
    assert result.seeds_run >= 1 and result.ok


def test_replay_failure_detects_spec_drift():
    spec = generate_spec(3)
    payload = {
        "kind": "fuzz_failure", "check": "numerics", "seed": 3,
        "spec": spec.to_dict(), "spec_hash": "0" * 64,
    }
    with pytest.raises(ValueError, match="drift"):
        replay_failure(payload, FAST)


def test_record_failure_numbering_and_corrupt_tolerance(tmp_path):
    store = RunStore(str(tmp_path))
    writer = store.create("t", machine="intel_cpu", seed=0, workload="w",
                          config={}).begin()
    p0 = writer.record_failure({"check": "numerics", "i": 0})
    p1 = writer.record_failure({"check": "tuned!", "i": 1})
    assert os.path.basename(p0).startswith("0000-numerics")
    assert os.path.basename(p1).startswith("0001-")
    with open(os.path.join(os.path.dirname(p0), "zzzz-bad.json"), "w") as f:
        f.write("{corrupt")
    rec = RunRecord(writer.path)
    assert [p["i"] for p in rec.failures] == [0, 1]  # corrupt one skipped


# ---------------------------------------------------------------------------
# corpus export: pretraining data the tuning stack can consume
# ---------------------------------------------------------------------------

def test_export_corpus_format_and_loaders(tmp_path):
    out = str(tmp_path / "corpus.jsonl")
    summary = export_corpus(out, seeds=4, samples_per_task=2, options=FAST)
    assert summary["path"] == out and summary["tasks"] >= 1
    rows = [json.loads(line) for line in open(out)]
    assert len(rows) == summary["tasks"]
    sigs = set()
    for row in rows:
        assert row["kind"] == "fuzz_corpus_task"
        assert row["machine"] == "intel_cpu"
        assert isinstance(row["seed"], int) and row["node"]
        assert len(row["spec_hash"]) == 64
        data = row["cost_model_seed"]
        assert len(data["X"]) == len(data["y"]) == row["samples"]
        sigs.add((row["seed"], row["node"]))
    assert len(sigs) == len(rows)  # task classes are deduped

    # the exported pairs are consumable by a fresh cost model
    merged = corpus_cost_model_seed(out)
    assert merged is not None
    assert len(merged["X"]) == len(merged["y"]) == summary["samples"]
    model = CostModel()
    model.seed(merged)

    # the originating ComputeDefs rebuild from (seed, node) alone
    comps = corpus_workloads(out, limit=2)
    assert 1 <= len(comps) <= 2
    names = {row["node"] for row in rows}
    assert all(c.name in names for c in comps)


def test_corpus_loaders_tolerate_garbage(tmp_path):
    path = str(tmp_path / "junk.jsonl")
    with open(path, "w") as f:
        f.write("{not json\n\n")
        f.write(json.dumps({"kind": "other_row"}) + "\n")
    assert corpus_workloads(path) == []
    assert corpus_cost_model_seed(path) is None
