"""Numeric end-to-end correctness of compiled model-zoo graphs.

Scaled-down model-zoo variants are compiled with ALT and executed; outputs
must match the logical-space reference bit-for-bit (up to accumulation
order).  This exercises the full chain -- layout templates with unfold,
propagation with absorption and replication, conversion insertion, tuned
schedules, fusion annotations, lowering, and interpretation -- on real
network topologies (residual junctions, depthwise chains, attention).
"""

import numpy as np
import pytest

from repro.exec.graph_runner import random_inputs, run_compiled, run_graph_reference
from repro.graph.models import bert, mobilenet_v2, resnet18, resnet3d18
from repro.machine.spec import get_machine
from repro.pipeline import CompileOptions, compile_graph

MACHINE = get_machine("intel_cpu")


def compile_and_compare(graph, budget=100, seed=0, atol=1e-7):
    model = compile_graph(
        graph, MACHINE, CompileOptions(mode="alt", total_budget=budget, seed=seed)
    )
    inputs = random_inputs(model.graph, seed=seed + 10)
    ref = run_graph_reference(model.graph, inputs)
    got = run_compiled(model, inputs)
    for name, arr in got.items():
        assert np.allclose(arr, ref[name], atol=atol), name
    return model


@pytest.mark.slow
def test_resnet18_micro():
    model = compile_and_compare(resnet18(batch=1, image=32, width=4, num_classes=8))
    assert model.latency_s > 0


@pytest.mark.slow
def test_mobilenet_v2_micro():
    model = compile_and_compare(
        mobilenet_v2(batch=1, image=32, width_mult=0.125, num_classes=8)
    )
    # depthwise chains survive layout replication
    assert any("dwconv" in n.name for n in model.graph.nodes)


@pytest.mark.slow
def test_bert_micro():
    compile_and_compare(
        bert(batch=1, seq=4, hidden=8, layers=1, heads=2, ff=16, name="bert_micro"),
        atol=1e-6,
    )


@pytest.mark.slow
def test_resnet3d_micro():
    compile_and_compare(
        resnet3d18(batch=1, frames=4, image=8, width=4, num_classes=4)
    )


def test_alt_wp_mode_also_correct():
    """The ablation path (no replication, more conversions) stays correct."""
    graph = resnet18(batch=1, image=32, width=4, num_classes=8)
    model = compile_graph(
        graph, MACHINE, CompileOptions(mode="alt-wp", total_budget=80, seed=1)
    )
    inputs = random_inputs(model.graph, seed=5)
    ref = run_graph_reference(model.graph, inputs)
    got = run_compiled(model, inputs)
    for name, arr in got.items():
        assert np.allclose(arr, ref[name], atol=1e-7), name
