"""Property-based round-trip suite for layout primitives.

Complements ``test_layout_primitives`` (hand-picked cases) with randomized
coverage: seeded random logical shapes crossed with random primitive
sequences, checking the algebra the paper's Section 4.1.2 relies on --

- the inverse primitives really invert (``fold`` after ``unfold``,
  ``unpad`` after ``pad``), restoring the exact dim stack;
- ``fuse`` after ``split`` is a data-movement no-op (same physical bytes);
- any legal chain round-trips through ``materialize``/``unmaterialize``
  and its forward/inverse access expressions agree with the moved data;
- single-operator programs lowered under random layout chains still match
  the numpy reference (the executable form of the same guarantee).
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.exec.reference import conv2d_ref
from repro.exec.single_op import run_compute
from repro.ir.expr import Var
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.ops.gemm import gemm

SETTINGS = dict(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ---------------------------------------------------------------------------
# strategies: random shapes and random (legal) primitive chains


@st.composite
def logical_shapes(draw):
    ndim = draw(st.integers(2, 4))
    return tuple(draw(st.sampled_from([2, 3, 4, 6, 8])) for _ in range(ndim))


def _apply_random_primitive(draw, lay: Layout, advanced=("pad", "unfold")) -> Layout:
    """Extend ``lay`` by one randomly chosen legal primitive (or return it
    unchanged when the drawn kind has no legal application)."""
    kinds = ["split", "reorder", "fuse"] + list(advanced)
    kind = draw(st.sampled_from(kinds))
    dims = lay.dims
    if kind == "split":
        cands = [
            (i, f)
            for i, d in enumerate(dims)
            for f in (2, 3)
            if d.size % f == 0 and d.size // f > 1
        ]
        if not cands:
            return lay
        i, f = draw(st.sampled_from(cands))
        return lay.split(i, [dims[i].size // f, f])
    if kind == "reorder":
        perm = draw(st.permutations(range(len(dims))))
        return lay.reorder(list(perm))
    if kind == "fuse":
        if len(dims) < 2:
            return lay
        i = draw(st.integers(0, len(dims) - 2))
        return lay.fuse([i, i + 1])
    if kind == "pad":
        i = draw(st.integers(0, len(dims) - 1))
        before = draw(st.integers(0, 2))
        after = draw(st.integers(0 if before else 1, 2))
        return lay.pad(i, before, after)
    # unfold: tile size <= dim size, any stride <= tile keeps it legal
    cands = [i for i, d in enumerate(dims) if d.size >= 2]
    if not cands:
        return lay
    i = draw(st.sampled_from(cands))
    tile = draw(st.integers(2, min(4, dims[i].size)))
    stride = draw(st.integers(1, tile))
    return lay.unfold(i, tile, stride)


@st.composite
def random_layouts(draw, advanced=("pad", "unfold"), max_prims=5):
    shape = draw(logical_shapes())
    lay = Layout(shape)
    for _ in range(draw(st.integers(0, max_prims))):
        lay = _apply_random_primitive(draw, lay, advanced)
    return lay


def _roundtrip(lay: Layout, seed: int = 0) -> None:
    """materialize/unmaterialize identity + access agreement with the data."""
    rng = np.random.default_rng(seed)
    arr = rng.standard_normal(lay.logical_shape)
    phys = lay.materialize(arr)
    assert phys.shape == lay.physical_shape()
    assert np.array_equal(lay.unmaterialize(phys), arr)
    # inverse access expressions agree with the moved bytes at sampled
    # physical positions (forward accesses may be unfold-constrained, the
    # inverse is total); a mask of ones identifies real data slots -- pad
    # slots hold zeros and their inverse coordinates are meaningless
    mask = lay.materialize(np.ones(lay.logical_shape))
    pnames = [f"p{k}" for k in range(lay.ndim)]
    inv = lay.inverse_access([Var(n) for n in pnames])
    idx_rng = np.random.default_rng(seed + 1)
    for _ in range(25):
        physical = tuple(int(idx_rng.integers(0, s)) for s in lay.physical_shape())
        if mask[physical] != 1.0:
            assert phys[physical] == 0.0  # pad slot
            continue
        env = dict(zip(pnames, physical))
        logical = tuple(e.evaluate(env) for e in inv)
        assert all(0 <= v < s for v, s in zip(logical, lay.logical_shape))
        assert phys[physical] == arr[logical]


# ---------------------------------------------------------------------------
# inverse-primitive identities


@given(st.data())
@settings(**SETTINGS)
def test_fold_undoes_unfold(data):
    lay = data.draw(random_layouts())
    dims = lay.dims
    cands = [i for i, d in enumerate(dims) if d.size >= 2]
    if not cands:
        return
    i = data.draw(st.sampled_from(cands))
    tile = data.draw(st.integers(2, min(4, dims[i].size)))
    stride = data.draw(st.integers(1, tile))
    back = lay.unfold(i, tile, stride).fold()
    assert back.signature() == lay.signature()
    assert back.physical_shape() == lay.physical_shape()
    arr = np.random.default_rng(3).standard_normal(lay.logical_shape)
    assert np.array_equal(back.materialize(arr), lay.materialize(arr))


@given(st.data())
@settings(**SETTINGS)
def test_unpad_undoes_pad(data):
    lay = data.draw(random_layouts())
    i = data.draw(st.integers(0, lay.ndim - 1))
    before = data.draw(st.integers(0, 2))
    after = data.draw(st.integers(0 if before else 1, 2))
    back = lay.pad(i, before, after).unpad()
    assert back.signature() == lay.signature()
    assert back.physical_shape() == lay.physical_shape()
    arr = np.random.default_rng(4).standard_normal(lay.logical_shape)
    assert np.array_equal(back.materialize(arr), lay.materialize(arr))


@given(st.data())
@settings(**SETTINGS)
def test_fuse_undoes_split(data):
    """Splitting a dim and fusing the two halves back moves no data: the
    physical bytes (and the dim stack's sizes) match the unsplit layout."""
    lay = data.draw(random_layouts())
    dims = lay.dims
    cands = [
        (i, f)
        for i, d in enumerate(dims)
        for f in (2, 3)
        if d.size % f == 0 and d.size // f > 1
    ]
    if not cands:
        return
    i, f = data.draw(st.sampled_from(cands))
    back = lay.split(i, [dims[i].size // f, f]).fuse([i, i + 1])
    assert back.physical_shape() == lay.physical_shape()
    arr = np.random.default_rng(5).standard_normal(lay.logical_shape)
    assert np.array_equal(back.materialize(arr), lay.materialize(arr))
    assert np.array_equal(back.unmaterialize(back.materialize(arr)), arr)


def test_inverse_on_wrong_primitive_rejected():
    lay = Layout((4, 4)).split(0, [2, 2])
    with pytest.raises(Exception, match="fold"):
        lay.fold()
    with pytest.raises(Exception, match="unpad"):
        lay.unpad()


# ---------------------------------------------------------------------------
# random chains round-trip


@given(random_layouts(), st.integers(0, 1000))
@settings(**SETTINGS)
def test_random_chain_roundtrip(lay, seed):
    _roundtrip(lay, seed)


@given(random_layouts(advanced=()), st.integers(0, 1000))
@settings(**SETTINGS)
def test_basic_chain_preserves_element_count(lay, seed):
    """Basic primitives never copy or drop elements."""
    n_logical = int(np.prod(lay.logical_shape))
    n_physical = int(np.prod(lay.physical_shape()))
    assert n_logical == n_physical
    assert lay.expansion_ratio() == 1.0
    _roundtrip(lay, seed)


@given(random_layouts())
@settings(**SETTINGS)
def test_replay_onto_reproduces_chain(lay):
    """The propagation copy (Algorithm 1 line 11) is signature-exact."""
    copy = lay.replay_onto(Layout(lay.logical_shape, lay.logical_names))
    assert copy.signature() == lay.signature()
    assert copy.physical_shape() == lay.physical_shape()


# ---------------------------------------------------------------------------
# executable form: transformed single-op programs match the reference

_G_RNG = np.random.default_rng(11)
_A = _G_RNG.standard_normal((6, 8))
_B = _G_RNG.standard_normal((8, 4))
_GEMM_REF = _A @ _B

_X = _G_RNG.standard_normal((1, 4, 8, 8))
_K = _G_RNG.standard_normal((4, 4, 3, 3))
_CONV_REF = conv2d_ref(_X, _K, 1)


def _gemm():
    return gemm(Tensor("A", (6, 8)), Tensor("B", (8, 4)), name="pg")


@st.composite
def tensor_layouts(draw, shape, advanced=("pad",), max_prims=3):
    lay = Layout(shape)
    for _ in range(draw(st.integers(0, max_prims))):
        lay = _apply_random_primitive(draw, lay, advanced)
    return lay


@given(st.data())
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_random_layout_chains_preserve_gemm(data):
    """Basic chains on every tensor; pad chains on the inputs (the lowering
    rejects output pad by design: it would compute out-of-domain points).
    Unfold is excluded here -- it is only legal on sliding-window accesses
    and is covered by the template tests in test_transform_properties."""
    comp = _gemm()
    layouts = {
        "pg.out": data.draw(tensor_layouts(comp.output.shape, advanced=())),
        "A": data.draw(tensor_layouts((6, 8))),
        "B": data.draw(tensor_layouts((8, 4))),
    }
    got = run_compute(comp, {"A": _A, "B": _B}, layouts)
    assert np.allclose(got, _GEMM_REF)


@given(st.data())
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_padded_layout_chains_preserve_conv(data):
    """Pad (the alignment primitive) composes with basic chains on every
    conv tensor without changing results."""
    from repro.ops.conv import conv2d

    comp = conv2d(Tensor("X", (1, 4, 8, 8)), Tensor("K", (4, 4, 3, 3)), name="pp")
    layouts = {
        "pp.out": data.draw(
            tensor_layouts(comp.output.shape, advanced=(), max_prims=2)
        ),
        "X": data.draw(tensor_layouts((1, 4, 8, 8), max_prims=2)),
        "K": data.draw(tensor_layouts((4, 4, 3, 3), max_prims=2)),
    }
    got = run_compute(comp, {"X": _X, "K": _K}, layouts)
    assert np.allclose(got, _CONV_REF)
