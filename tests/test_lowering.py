"""The lowering pass: loop reconstruction, access remapping, schedules."""

import numpy as np
import pytest

from repro.exec.reference import conv2d_ref
from repro.exec.single_op import run_compute
from repro.ir.expr import Var
from repro.ir.nest import PARALLEL, SERIAL, UNROLL, VECTORIZE
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.lower.lower import LoweringError, lower_compute
from repro.ops.conv import conv2d
from repro.ops.gemm import gemm

rng = np.random.default_rng(0)


def small_conv():
    inp = Tensor("Inp", (1, 3, 8, 8), role="input")
    ker = Tensor("Ker", (4, 3, 3, 3), role="const")
    return conv2d(inp, ker, name="c")


class TestLoopReconstruction:
    def test_identity_layout_one_loop_per_dim(self):
        comp = small_conv()
        stage = lower_compute(comp)
        spatial = stage.spatial_loops
        assert [l.extent for l in spatial] == [1, 4, 6, 6]
        assert {l.var for l in stage.reduction_loops} == {"ri", "rh", "rw"}

    def test_transformed_output_reconstructs_loops(self):
        comp = small_conv()
        lay = (
            Layout((1, 4, 6, 6), ["N", "O", "H", "W"])
            .split("H", [3, 2])
            .reorder(["N", "H.0", "W", "O", "H.1"])
        )
        stage = lower_compute(comp, {"c.out": lay})
        assert [l.extent for l in stage.spatial_loops] == [1, 3, 6, 4, 2]

    def test_input_remap_via_inverse(self):
        """Accesses are S_X(S_Y^{-1}(L')): transformed output layout feeds
        back into input accessing expressions."""
        comp = small_conv()
        lay = Layout((1, 4, 6, 6), ["N", "O", "H", "W"]).reorder(
            ["N", "H", "W", "O"]
        )
        stage = lower_compute(comp, {"c.out": lay})
        inp_reads = [r for r in stage.reads() if r.buffer.name == "Inp"]
        # the H index of the input must now depend on the 2nd loop (s1)
        h_expr = inp_reads[0].indices[2]
        assert "s1" in {v for v in h_expr.free_vars()}

    def test_pad_on_output_rejected(self):
        comp = small_conv()
        lay = Layout((1, 4, 6, 6)).pad(1, after=4)
        with pytest.raises(LoweringError, match="pad"):
            lower_compute(comp, {"c.out": lay})

    def test_layout_shape_mismatch_rejected(self):
        comp = small_conv()
        with pytest.raises(LoweringError, match="shape"):
            lower_compute(comp, {"c.out": Layout((1, 4, 7, 7))})


class TestScheduleApplication:
    def test_split_reorder_annotations(self):
        comp = small_conv()
        sched = (
            LoopSchedule()
            .split("s2", [3, 2])
            .reorder(["s0", "s1", "s2.0", "ri", "rh", "rw", "s2.1", "s3"])
            .parallel("s0")
            .vectorize("s3")
            .unroll("s2.1")
        )
        stage = lower_compute(comp, {}, sched)
        kinds = {l.var: l.kind for l in stage.loops}
        assert kinds["s0"] == PARALLEL
        assert kinds["s3"] == VECTORIZE
        assert kinds["s2.1"] == UNROLL
        assert [l.var for l in stage.loops][2] == "s2.0"

    def test_split_must_be_exact(self):
        comp = small_conv()
        with pytest.raises(LoweringError, match="not exact"):
            lower_compute(comp, {}, LoopSchedule().split("s2", [4, 2]))

    def test_reduction_split_tracks_membership(self):
        comp = small_conv()
        sched = LoopSchedule().split("ri", [3, 1])
        stage = lower_compute(comp, {}, sched)
        assert "ri.0" in stage.reduce_vars and "ri.1" in stage.reduce_vars

    def test_vectorize_must_be_innermost(self):
        comp = small_conv()
        with pytest.raises(LoweringError, match="innermost"):
            lower_compute(comp, {}, LoopSchedule().vectorize("s0"))

    def test_vectorize_reduction_rejected(self):
        comp = small_conv()
        sched = LoopSchedule().reorder(
            ["s0", "s1", "s2", "s3", "ri", "rh", "rw"]
        ).vectorize("rw")
        with pytest.raises(LoweringError, match="reduction"):
            lower_compute(comp, {}, sched)

    def test_parallel_reduction_rejected(self):
        comp = small_conv()
        with pytest.raises(LoweringError, match="reduction"):
            lower_compute(comp, {}, LoopSchedule().parallel("ri"))

    def test_parallel_must_be_prefix(self):
        comp = small_conv()
        with pytest.raises(LoweringError, match="prefix"):
            lower_compute(comp, {}, LoopSchedule().parallel("s1"))

    def test_reorder_must_cover_all(self):
        comp = small_conv()
        with pytest.raises(LoweringError):
            lower_compute(comp, {}, LoopSchedule().reorder(["s0", "s1"]))

    def test_unknown_loop_rejected(self):
        comp = small_conv()
        with pytest.raises(LoweringError, match="no loop"):
            lower_compute(comp, {}, LoopSchedule().split("zz", [2, 2]))

    def test_split_preserves_semantics(self):
        comp = small_conv()
        x = rng.standard_normal((1, 3, 8, 8))
        k = rng.standard_normal((4, 3, 3, 3))
        ref = conv2d_ref(x, k)
        sched = (
            LoopSchedule()
            .split("s2", [2, 3])
            .split("ri", [3, 1])
            .reorder(["s0", "s2.0", "s1", "ri.0", "rh", "s2.1", "rw", "ri.1", "s3"])
            .vectorize("s3")
        )
        got = run_compute(comp, {"Inp": x, "Ker": k}, {}, sched)
        assert np.allclose(got, ref)


class TestStoreAtLowering:
    def test_bias_attached_to_weight(self):
        """The paper's store_at example: bias vector rides in the weight
        matrix's buffer, one extra row."""
        from repro.ir.compute import Access, Axis, ComputeDef
        from repro.ir.expr import Var as V

        a = Tensor("A", (4, 6), role="input")
        w = Tensor("W", (6, 8), role="const")
        bias = Tensor("B", (8,), role="const")
        out = Tensor("out", (4, 8))
        m, n, k = V("m"), V("n"), V("k")
        comp = ComputeDef(
            "fc",
            out,
            [Axis("m", 4), Axis("n", 8)],
            [Axis("k", 6)],
            Access(a, [m, k]) * Access(w, [k, n]) + Access(bias, [n]) * (1.0 / 6),
            reduce_op="sum",
            tags=("complex", "gemm"),
        )
        layouts = {"B": Layout((8,)).store_at("W", 0)}
        stage = lower_compute(comp, layouts)
        # bias reads must target the W buffer's extra row
        w_buf = [r.buffer for r in stage.reads() if r.buffer.name == "W"]
        assert w_buf and w_buf[0].shape == (7, 8)

        av = rng.standard_normal((4, 6))
        wv = rng.standard_normal((6, 8))
        bv = rng.standard_normal(8)
        got = run_compute(comp, {"A": av, "W": wv, "B": bv}, layouts)
        assert np.allclose(got, av @ wv + bv)
