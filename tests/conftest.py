"""Shared test fixtures.

The measurement engine persists evaluations under ``~/.cache/repro`` by
default; the suite redirects that to a per-session temporary directory so
tests never touch (or depend on) the user's real cache, while still
exercising the disk-cache code path.
"""

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _measure_cache_sandbox(tmp_path_factory):
    old = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path_factory.mktemp("measure-cache"))
    yield
    if old is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = old
    from repro.tuning.measurer import shutdown_pools

    shutdown_pools()
