"""Index-expression IR: evaluation, simplification, affine/interval analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import (
    Add,
    Const,
    FloorDiv,
    Max,
    Min,
    Mod,
    Mul,
    Sub,
    Var,
    affine_coefficients,
    bounds,
    canonicalize,
    is_affine,
    simplify,
    simplify_ranges,
    stride_of,
    to_expr,
)


class TestConstruction:
    def test_operator_overloads(self):
        a = Var("a")
        e = (a + 1) * 3 - a // 2 + a % 5
        assert e.evaluate({"a": 7}) == (7 + 1) * 3 - 7 // 2 + 7 % 5

    def test_to_expr_coerces_int(self):
        assert isinstance(to_expr(5), Const)
        assert to_expr(5).value == 5

    def test_to_expr_rejects_float(self):
        with pytest.raises(TypeError):
            to_expr(1.5)

    def test_var_requires_name(self):
        with pytest.raises(ValueError):
            Var("")

    def test_const_requires_int(self):
        with pytest.raises(TypeError):
            Const(2.5)

    def test_unbound_variable_raises(self):
        with pytest.raises(KeyError, match="unbound"):
            Var("x").evaluate({})

    def test_rsub_rmul_radd(self):
        a = Var("a")
        assert (3 - a).evaluate({"a": 1}) == 2
        assert (3 * a).evaluate({"a": 2}) == 6
        assert (3 + a).evaluate({"a": 2}) == 5

    def test_neg(self):
        assert (-Var("a")).evaluate({"a": 4}) == -4

    def test_free_vars(self):
        e = Var("a") * 2 + Var("b") % 3
        assert e.free_vars() == {"a", "b"}

    def test_substitute(self):
        e = Var("a") + Var("b")
        e2 = e.substitute({"a": Var("c") * 2})
        assert e2.evaluate({"c": 3, "b": 1}) == 7


class TestSimplify:
    def test_constant_folding(self):
        e = (Const(3) + 4) * 2 - 1
        assert simplify(e).value == 13

    def test_identities(self):
        a = Var("a")
        assert simplify(a + 0).same_as(a)
        assert simplify(a * 1).same_as(a)
        assert simplify(a * 0).same_as(Const(0))
        assert simplify(a // 1).same_as(a)
        assert simplify(a % 1).same_as(Const(0))
        assert simplify(a - a).same_as(Const(0))

    def test_min_max_folding(self):
        assert simplify(Min(Const(2), Const(5))).value == 2
        assert simplify(Max(Const(2), Const(5))).value == 5
        a = Var("a")
        assert simplify(Min(a, a)).same_as(a)

    @given(st.integers(0, 100), st.integers(0, 100))
    def test_simplify_preserves_value(self, x, y):
        a, b = Var("a"), Var("b")
        e = (a * 3 + b) // 4 % 7 + Max(a, b) - Min(a - b, 2)
        env = {"a": x, "b": y}
        assert simplify(e).evaluate(env) == e.evaluate(env)


class TestAffine:
    def test_coefficients(self):
        a, b = Var("a"), Var("b")
        coeffs = affine_coefficients(a * 3 + b * 2 + 5 - a)
        assert coeffs == {"a": 2, "b": 2, "": 5}

    def test_non_affine(self):
        a, b = Var("a"), Var("b")
        assert affine_coefficients(a * b) is None
        assert affine_coefficients(a // 2) is None
        assert affine_coefficients(a % 3) is None

    def test_stride_of(self):
        a, b = Var("a"), Var("b")
        e = a * 12 + b
        assert stride_of(e, "a") == 12
        assert stride_of(e, "b") == 1
        assert stride_of(e, "c") == 0

    def test_stride_of_nonaffine_unused_var(self):
        a = Var("a")
        assert stride_of(a // 2, "b") == 0
        assert stride_of(a // 2, "a") is None

    def test_is_affine(self):
        assert is_affine(Var("a") * 2 + 1)
        assert not is_affine(Var("a") % 2)


class TestBounds:
    def test_linear(self):
        a = Var("a")
        assert bounds(a * 2 + 1, {"a": (0, 5)}) == (1, 11)

    def test_sub_mul(self):
        a, b = Var("a"), Var("b")
        lo, hi = bounds(a - b * 2, {"a": (0, 3), "b": (1, 2)})
        assert lo == -4 and hi == 1

    def test_floordiv_mod(self):
        a = Var("a")
        assert bounds(a // 3, {"a": (0, 10)}) == (0, 3)
        assert bounds(a % 4, {"a": (0, 3)}) == (0, 3)  # modulus never fires
        assert bounds(a % 4, {"a": (0, 100)}) == (0, 3)

    def test_div_by_zero_range(self):
        a, b = Var("a"), Var("b")
        with pytest.raises(ZeroDivisionError):
            bounds(a // b, {"a": (0, 3), "b": (-1, 1)})

    def test_missing_range(self):
        with pytest.raises(KeyError):
            bounds(Var("q"), {})

    @given(st.integers(0, 20), st.integers(0, 20))
    def test_bounds_contain_value(self, x, y):
        a, b = Var("a"), Var("b")
        e = (a * 3 - b) // 4 + Max(a, b) % 5
        lo, hi = bounds(e, {"a": (0, 20), "b": (0, 20)})
        val = e.evaluate({"a": x, "b": y})
        assert lo <= val <= hi


class TestRangeSimplify:
    def test_split_fuse_roundtrip(self):
        a, b = Var("a"), Var("b")
        ranges = {"a": (0, 7), "b": (0, 3)}
        assert simplify_ranges((a * 4 + b) // 4, ranges).same_as(a)
        assert simplify_ranges((a * 4 + b) % 4, ranges).same_as(b)

    def test_keeps_when_unsafe(self):
        a, b = Var("a"), Var("b")
        e = (a * 4 + b) // 4
        out = simplify_ranges(e, {"a": (0, 7), "b": (0, 5)})
        assert "//" in str(out)

    def test_mixed_coefficients(self):
        a, b = Var("a"), Var("b")
        out = simplify_ranges((a * 8 + b * 4) // 4, {"a": (0, 7), "b": (0, 3)})
        assert affine_coefficients(out) == {"a": 2, "b": 1, "": 0}

    def test_cancellation(self):
        a, b = Var("s1"), Var("s4")
        e = (a * 2 + b + Var("rh")) - a * 2
        out = simplify_ranges(e, {"s1": (0, 3), "s4": (0, 1), "rh": (0, 2)})
        assert affine_coefficients(out) == {"s4": 1, "rh": 1, "": 0}

    @given(
        st.integers(2, 8),
        st.integers(0, 30),
        st.integers(0, 30),
    )
    @settings(max_examples=60)
    def test_value_preserved(self, d, x, y):
        a, b = Var("a"), Var("b")
        e = (a * d + b) // d + (a * d + b) % d
        ranges = {"a": (0, 30), "b": (0, 30)}
        out = simplify_ranges(e, ranges)
        env = {"a": x, "b": y}
        assert out.evaluate(env) == e.evaluate(env)


class TestCanonicalize:
    def test_sorts_and_merges(self):
        a, b = Var("a"), Var("b")
        e = b + a * 2 + b + 3
        out = canonicalize(e)
        assert affine_coefficients(out) == {"a": 2, "b": 2, "": 3}

    def test_zero_result(self):
        a = Var("a")
        assert canonicalize(a - a).same_as(Const(0))

    def test_non_affine_unchanged(self):
        e = Var("a") % 3
        assert canonicalize(e) is e
