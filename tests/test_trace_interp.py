"""Trace-driven profiler and the loop-nest interpreter."""

import numpy as np
import pytest

from repro.exec.interpreter import compile_stage, run_program, run_stage
from repro.exec.reference import conv2d_ref
from repro.ir.nest import Program
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.lower.lower import lower_compute
from repro.machine.spec import get_machine
from repro.machine.trace import profile_program, profile_stage
from repro.ops.conv import conv2d
from repro.ops.elementwise import relu

rng = np.random.default_rng(0)


def conv_setup(hw=10, c=4):
    inp = Tensor("I", (1, c, hw, hw))
    ker = Tensor("K", (c, c, 3, 3))
    comp = conv2d(inp, ker, name="c")
    x = rng.standard_normal(inp.shape)
    k = rng.standard_normal(ker.shape)
    return comp, x, k


class TestInterpreter:
    def test_stage_source_compiles(self):
        comp, _, _ = conv_setup()
        fn = compile_stage(lower_compute(comp))
        assert "for v" in fn.__source__

    def test_run_program_multi_stage(self):
        comp, x, k = conv_setup()
        act = relu(comp.output, name="r")
        program = Program([lower_compute(comp), lower_compute(act)])
        bufs = run_program(program, {"I": x, "K": k})
        ref = np.maximum(conv2d_ref(x, k), 0)
        assert np.allclose(bufs["r.out"], ref)

    def test_run_program_shape_check(self):
        comp, x, k = conv_setup()
        program = Program([lower_compute(comp)])
        with pytest.raises(ValueError, match="shape"):
            run_program(program, {"I": x[:, :, :5], "K": k})

    def test_missing_buffer(self):
        comp, x, k = conv_setup()
        stage = lower_compute(comp)
        with pytest.raises(KeyError):
            run_stage(stage, {"I": x})

    def test_max_reduction_initialized(self):
        from repro.ops.pool import max_pool2d

        t = Tensor("X", (1, 2, 6, 6))
        comp = max_pool2d(t, 2, 2)
        x = rng.standard_normal(t.shape) - 10.0  # all negative
        stage = lower_compute(comp)
        bufs = {"X": x, comp.output.name: np.zeros(comp.output.shape)}
        run_stage(stage, bufs)
        assert (bufs[comp.output.name] < 0).all()  # -inf init, not 0


class TestTraceProfiler:
    def setup_method(self):
        self.m = get_machine("arm_cpu")

    def test_counts_match_structure(self):
        comp, _, _ = conv_setup(hw=8)
        stage = lower_compute(comp)
        prof = profile_stage(stage, self.m)
        assert prof.iterations == stage.trip_count()
        assert prof.loads == prof.iterations * 2  # input + kernel
        assert prof.stores == prof.iterations
        l1 = prof.level_stats["L1"]
        assert l1.accesses == prof.loads + prof.stores
        assert 0 < l1.misses <= l1.accesses

    def test_contiguous_layout_fewer_misses_than_strided(self):
        """Table 2's point: a contiguous tile misses ~prefetch-degree less
        often than a strided walk over the same data volume."""
        from repro.ir.compute import Access, Axis, ComputeDef
        from repro.ir.expr import Var

        n = 2048  # 2048 x 16 floats = 128 KiB: larger than the 64 KiB L1
        src = Tensor("S", (n, 16))
        out = Tensor("O", (n, 16))
        i, j = Var("i"), Var("j")
        row_major = ComputeDef(
            "copy", out, [Axis("i", n), Axis("j", 16)], [],
            Access(src, [i, j]),
        )
        col_major = ComputeDef(
            "copyT", Tensor("O2", (16, n)), [Axis("j", 16), Axis("i", n)], [],
            Access(src, [i, j]),
        )
        p_seq = profile_stage(lower_compute(row_major), self.m)
        p_str = profile_stage(lower_compute(col_major), self.m)
        assert p_seq.level_stats["L1"].misses < p_str.level_stats["L1"].misses

    def test_profile_program_per_stage(self):
        comp, _, _ = conv_setup(hw=8)
        act = relu(comp.output, name="r")
        program = Program([lower_compute(comp), lower_compute(act)])
        profs = profile_program(program, self.m)
        assert set(profs) == {"c", "r"}
        # relu reuses conv output while warm: high hit rate
        r = profs["r"].level_stats["L1"]
        assert r.misses < r.accesses

    def test_latency_positive(self):
        comp, _, _ = conv_setup(hw=6)
        prof = profile_stage(lower_compute(comp), self.m)
        assert prof.latency_cycles > 0

    def test_layout_changes_trace(self):
        comp, _, _ = conv_setup(hw=8)
        base = profile_stage(lower_compute(comp), self.m)
        lay = Layout((1, 4, 6, 6), ["N", "O", "H", "W"]).reorder(
            ["N", "H", "W", "O"]
        )
        alt = profile_stage(lower_compute(comp, {"c.out": lay}), self.m)
        assert base.level_stats["L1"].misses != alt.level_stats["L1"].misses \
            or base.iterations == alt.iterations
