"""Cross-task scheduler: dedup, budget allocation, assembly, resume, CLI.

The network tuner's contract (see ``repro.tuning.scheduler``):

- repeated operators deduplicate into weighted tasks, deterministically;
- the shared budget is never exceeded and is split *non-uniformly* by the
  gradient allocator;
- the emitted network schedule never loses to the untuned default-layout
  baseline, and (``verify=True``) matches the numeric reference;
- a killed-and-resumed network tune is bit-identical to an uninterrupted
  one, through the library API and through ``repro tune --model``;
- run summaries carry the network latency into the perf-gate comparator.
"""

import math

import pytest

from repro.cli import main as cli_main
from repro.graph.builder import GraphBuilder
from repro.machine.spec import get_machine
from repro.obs.compare import compare_summaries
from repro.obs.runstore import STATUS_COMPLETED, RunRecord, RunStore
from repro.report import network_report
from repro.tuning.checkpoint import (
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
)
from repro.tuning.measurer import MeasureOptions
from repro.tuning.scheduler import (
    SchedulerOptions,
    extract_tasks,
    tune_network,
)

MACHINE = get_machine("intel_cpu")


def tiny_net():
    """Two identical convs (one task, weight 2) plus a dense head."""
    b = GraphBuilder("tinynet")
    x = b.input((1, 4, 10, 10))
    x = b.conv2d(x, 4, 3, pad=1)
    x = b.relu(x)
    x = b.conv2d(x, 4, 3, pad=1)
    x = b.relu(x)
    x = b.global_avg_pool(x)
    x = b.dense(x, 8)
    return b.build()


def mo():
    return MeasureOptions(jobs=1, cache_dir=None)


def net_fingerprint(res):
    """Everything observable about a NetworkTuneResult except wall clock."""
    task_fp = {}
    for name, t in res.tasks.items():
        telemetry = dict(t.telemetry or {})
        telemetry.pop("wall_time_s", None)
        task_fp[name] = (
            t.best_latency,
            t.measurements,
            tuple(t.history),
            t.best_layout_config,
            t.best_loop_config,
            tuple(sorted(telemetry.items())),
        )
    return (
        res.network_latency_s,
        res.baseline_latency_s,
        res.used_tuned,
        tuple(
            (
                a["round"], a["phase"], a["task"], a["granted"],
                a["consumed"], a["gradient"], a["best_latency"],
            )
            for a in res.allocations
        ),
        tuple(sorted(task_fp.items())),
    )


class Killer(Exception):
    """Stands in for SIGKILL right after a snapshot hits disk."""


class KillingManager(CheckpointManager):
    def __init__(self, path, every=1, die_after=3):
        super().__init__(path, every)
        self.die_after = die_after

    def save(self, payload):
        super().save(payload)
        if self.saves >= self.die_after:
            raise Killer()


# ---------------------------------------------------------------------------
# task extraction
# ---------------------------------------------------------------------------

class TestExtractTasks:
    def test_dedups_repeated_operators(self):
        g = tiny_net()
        tasks = extract_tasks(g)
        assert len(tasks) < len(g.complex_nodes())
        by_weight = {t.weight for t in tasks}
        assert 2 in by_weight  # the repeated conv collapsed into one class
        conv_task = next(t for t in tasks if t.weight == 2)
        assert len(conv_task.node_names) == 2
        assert conv_task.name == conv_task.node_names[0]
        assert sum(t.weight for t in tasks) == len(g.complex_nodes())

    def test_extraction_is_deterministic(self):
        a = extract_tasks(tiny_net())
        b = extract_tasks(tiny_net())
        assert [(t.name, t.weight, t.node_names) for t in a] == [
            (t.name, t.weight, t.node_names) for t in b
        ]

    def test_different_shapes_stay_separate(self):
        b = GraphBuilder("g")
        x = b.input((1, 4, 10, 10))
        x = b.conv2d(x, 4, 3, pad=1)
        x = b.conv2d(x, 8, 3, pad=1)  # different output channels
        g = b.build()
        tasks = extract_tasks(g)
        assert len(tasks) == 2
        assert all(t.weight == 1 for t in tasks)

    def test_resnet_dedup_is_substantial(self):
        from repro.graph.models import resnet18

        g = resnet18(batch=1, image=32, width=4, num_classes=8)
        tasks = extract_tasks(g)
        assert len(tasks) < len(g.complex_nodes()) < len(g.nodes)


# ---------------------------------------------------------------------------
# allocation + assembly
# ---------------------------------------------------------------------------

class TestNetworkTune:
    BUDGET = 160

    def _run(self, **kw):
        kw.setdefault("seed", 0)
        kw.setdefault("measure", mo())
        kw.setdefault("options", SchedulerOptions(round_budget=16))
        return tune_network(tiny_net, MACHINE, self.BUDGET, **kw)

    def test_completes_within_budget_and_beats_baseline(self):
        res = self._run(verify=True)
        spent = sum(r.measurements for r in res.reports)
        granted = sum(r.granted for r in res.reports)
        assert spent <= self.BUDGET
        assert granted >= spent
        # acceptance: reported latency never worse than the untuned baseline
        assert res.network_latency_s <= res.baseline_latency_s
        assert res.speedup >= 1.0
        assert res.verified is True
        assert set(res.tasks) == {r.name for r in res.reports}
        assert res.n_complex_nodes == 3 and len(res.reports) == 2

    def test_allocation_is_nonuniform(self):
        res = self._run()
        granted = [r.granted for r in res.reports]
        assert max(granted) != min(granted)
        # every grant row is attributable to a task and phase
        for row in res.allocations:
            assert row["phase"] in ("warmup", "gradient")
            assert row["task"] in res.tasks
        # warmup touched every task once before any gradient grant
        warmup = [a for a in res.allocations if a["phase"] == "warmup"]
        assert {a["task"] for a in warmup} == set(res.tasks)

    def test_deterministic_given_seed(self):
        assert net_fingerprint(self._run()) == net_fingerprint(self._run())

    def test_report_renders(self):
        res = self._run()
        text = network_report(res)
        assert "deduplicated" in text
        assert "end-to-end" in text
        for r in res.reports:
            assert r.name in text

    def test_empty_graph_rejected(self):
        def no_complex():
            b = GraphBuilder("ew")
            x = b.input((1, 4, 8, 8))
            b.relu(x)
            return b.build()

        with pytest.raises(ValueError, match="no complex operators"):
            tune_network(no_complex, MACHINE, 32, measure=mo())


# ---------------------------------------------------------------------------
# checkpoint / resume
# ---------------------------------------------------------------------------

class TestNetworkResume:
    BUDGET = 120
    OPTS = SchedulerOptions(round_budget=16)

    def _reference(self, path=None):
        checkpoint = CheckpointManager(path) if path else None
        return tune_network(
            tiny_net, MACHINE, self.BUDGET, seed=0, measure=mo(),
            options=self.OPTS, checkpoint=checkpoint,
        )

    def test_checkpointing_does_not_change_the_result(self, tmp_path):
        plain = self._reference()
        ticked = self._reference(str(tmp_path / "ck.pkl"))
        assert net_fingerprint(plain) == net_fingerprint(ticked)

    @pytest.mark.parametrize("die_after", [1, 3])
    def test_killed_and_resumed_is_bit_identical(self, tmp_path, die_after):
        path = str(tmp_path / "ck.pkl")
        with pytest.raises(Killer):
            tune_network(
                tiny_net, MACHINE, self.BUDGET, seed=0, measure=mo(),
                options=self.OPTS,
                checkpoint=KillingManager(path, die_after=die_after),
            )
        resumed = tune_network(
            tiny_net, MACHINE, self.BUDGET, seed=0, measure=mo(),
            options=self.OPTS, checkpoint=CheckpointManager(path),
            restore=load_checkpoint(path),
        )
        assert net_fingerprint(self._reference()) == net_fingerprint(resumed)

    def test_restore_refuses_other_configs(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        self._reference(path)
        payload = load_checkpoint(path)
        with pytest.raises(CheckpointError, match="budget"):
            tune_network(
                tiny_net, MACHINE, self.BUDGET + 16, seed=0, measure=mo(),
                options=self.OPTS, restore=payload,
            )

    def test_restore_refuses_single_op_checkpoints(self, tmp_path):
        from repro.ir.tensor import Tensor
        from repro.ops.gemm import gemm
        from repro.tuning.baselines import tune_alt

        path = str(tmp_path / "op.pkl")
        tune_alt(
            gemm(Tensor("A", (16, 16)), Tensor("B", (16, 16))), MACHINE,
            budget=24, seed=0, measure=mo(),
            checkpoint=CheckpointManager(path),
        )
        with pytest.raises(CheckpointError, match="kind"):
            tune_network(
                tiny_net, MACHINE, self.BUDGET, seed=0, measure=mo(),
                options=self.OPTS, restore=load_checkpoint(path),
            )


# ---------------------------------------------------------------------------
# CLI + run registry + comparator
# ---------------------------------------------------------------------------

NET_ARGS = [
    "tune", "--model", "resnet18", "--budget", "64", "--image", "32",
    "--width", "4", "--seed", "0", "--no-measure-cache",
    "--round-budget", "16",
]


class TestCliNetworkTune:
    def test_op_and_model_are_mutually_exclusive(self):
        with pytest.raises(SystemExit, match="either"):
            cli_main(["tune", "gmm", "--model", "resnet18"])

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="unknown model"):
            cli_main(["tune", "--model", "resnet99", "--budget", "32"])

    @pytest.mark.slow
    def test_network_tune_records_a_run(self, tmp_path, capsys):
        store_root = str(tmp_path / "runs")
        assert cli_main(NET_ARGS + ["--run-store", store_root]) == 0
        out = capsys.readouterr().out
        assert "deduplicated" in out and "end-to-end" in out
        rec = RunStore(store_root).latest()
        assert rec.status == STATUS_COMPLETED
        summary = rec.summary()
        model = summary["model"]
        assert model["mode"] == "alt-network"
        assert model["latency_s"] <= model["baseline_latency_s"]
        assert 0 < model["tasks"] < model["complex_nodes"] < model["graph_nodes"]
        assert rec.allocations, "allocations.jsonl missing or empty"
        assert len(summary["tasks"]) == model["tasks"]

    @pytest.mark.slow
    def test_interrupted_network_run_resumes_identically(self, tmp_path):
        # 1. uninterrupted reference
        ref_store = str(tmp_path / "ref")
        assert cli_main(NET_ARGS + ["--run-store", ref_store]) == 0
        ref = RunStore(ref_store).latest()

        # 2. same-config run, killed right after its first snapshot
        store = RunStore(str(tmp_path / "rs"))
        writer = store.create(
            ref.manifest["name"], machine=ref.manifest["machine"],
            seed=ref.manifest["seed"], workload=ref.manifest["workload"],
            config=dict(ref.manifest["config"]),
        ).begin()
        with pytest.raises(Killer):
            tune_network(
                lambda: __import__("repro.graph.models", fromlist=["resnet18"])
                .resnet18(batch=1, image=32, width=4, num_classes=10),
                MACHINE, 64, seed=0, measure=mo(),
                options=SchedulerOptions(round_budget=16),
                checkpoint=KillingManager(writer.checkpoint_path, die_after=1),
            )
        assert RunRecord(writer.path).resumable

        # 3. resume through the CLI; outcome matches the reference exactly
        assert cli_main(["tune", "--resume", writer.path]) == 0
        resumed = RunRecord(writer.path)
        assert resumed.status == STATUS_COMPLETED

        def strip(summary):
            tasks = {}
            for name, t in summary["tasks"].items():
                t = dict(t)
                (t.get("telemetry") or {}).pop("wall_time_s", None)
                tasks[name] = t
            return tasks, summary["model"]

        assert strip(ref.summary()) == strip(resumed.summary())
        assert ref.allocations == resumed.allocations


class TestComparatorNetworkRow:
    def _summary(self, latency):
        return {
            "run_id": "r", "seed": 0, "tasks": {},
            "model": {"graph": "tinynet", "latency_s": latency},
        }

    def test_network_regression_gates(self):
        res = compare_summaries(self._summary(1e-3), self._summary(1.2e-3))
        assert res["network"]["status"] == "regressed"
        assert res["verdict"] == "fail"
        assert any("network latency" in f for f in res["failures"])

    def test_network_improvement_passes(self):
        res = compare_summaries(self._summary(1e-3), self._summary(0.8e-3))
        assert res["network"]["status"] == "improved"
        assert res["verdict"] == "pass"

    def test_unchanged_network_stays_identical(self):
        res = compare_summaries(self._summary(1e-3), self._summary(1e-3))
        assert res["network"]["status"] == "unchanged"
        assert res["verdict"] == "identical"
