"""Fault-injection harness + the measurement engine's recovery paths.

The determinism half pins down :class:`FaultPlan` (seeded, order-independent
fault assignment, spec parsing); the recovery half drives the measurer
through every healing path the harness can trigger -- transient retry,
quarantine, pool kill/rebuild, straggler timeout, serial degradation -- and
checks the telemetry counters that the CI chaos job asserts on.
"""

import math

import pytest

from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.tuning.faults import (
    FAULT_KINDS,
    FaultPlan,
    SimulatedCrash,
    SimulatedTimeout,
)
from repro.tuning.measurer import (
    MeasureOptions,
    evaluate_candidate,
    evaluate_with_faults,
)
from repro.tuning.task import TuningTask

MACHINE = get_machine("intel_cpu")


def small_conv():
    inp = Tensor("I", (1, 8, 12, 12))
    ker = Tensor("K", (8, 8, 3, 3))
    return conv2d(inp, ker, name="c")


def make_task(budget, **measure_kw):
    measure_kw.setdefault("jobs", 1)
    measure_kw.setdefault("cache_dir", None)
    return TuningTask(
        small_conv(), MACHINE, budget, measure=MeasureOptions(**measure_kw)
    )


def distinct_candidates(task, n):
    loop_space = task.loop_space_for({})
    out, seen = [], set()
    for cfg in loop_space.heuristic_configs():
        sched = loop_space.schedule(cfg)
        sig = task._signature({}, sched)
        if sig not in seen:
            seen.add(sig)
            out.append(({}, sched))
    import random

    rng = random.Random(0)
    space = loop_space.space()
    while len(out) < n:
        sched = loop_space.schedule(space.sample(rng))
        sig = task._signature({}, sched)
        if sig not in seen:
            seen.add(sig)
            out.append(({}, sched))
    return out[:n]


class TestFaultPlan:
    def test_fault_at_is_deterministic_and_order_independent(self):
        plan = FaultPlan(seed=3, crash=0.1, timeout=0.1, os_error=0.2,
                         flaky=0.1)
        fwd = [plan.fault_at(i) for i in range(400)]
        rev = [plan.fault_at(i) for i in reversed(range(400))]
        assert fwd == list(reversed(rev))
        # a reconstructed plan (what a pool worker unpickles) agrees
        again = FaultPlan(seed=3, crash=0.1, timeout=0.1, os_error=0.2,
                          flaky=0.1)
        assert fwd == [again.fault_at(i) for i in range(400)]
        for kind in FAULT_KINDS:
            assert kind in fwd  # every kind fires at these rates

    def test_rates_roughly_respected(self):
        plan = FaultPlan(seed=0, os_error=0.25)
        n = 2000
        hits = sum(plan.fault_at(i) == "os_error" for i in range(n))
        assert 0.18 * n < hits < 0.32 * n

    def test_pinned_indices_win_over_rates(self):
        plan = FaultPlan(seed=0, crash_at=(5,), timeout_at=(6,),
                         os_error_at=(7,))
        assert plan.fault_at(5) == "crash"
        assert plan.fault_at(6) == "timeout"
        assert plan.fault_at(7) == "os_error"
        assert plan.fault_at(8) is None  # all rates zero

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(crash=1.5)
        with pytest.raises(ValueError):
            FaultPlan(os_error=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(scope="sometimes")

    def test_parse_spec(self):
        plan = FaultPlan.parse(
            "crash=0.02, timeout=0.01, oserror=0.04, seed=7, hang=2,"
            "scope=workers, crash_at=1+3"
        )
        assert plan.seed == 7
        assert plan.crash == 0.02
        assert plan.os_error == 0.04  # alias
        assert plan.hang_s == 2.0  # alias
        assert plan.scope == "workers"
        assert plan.crash_at == (1, 3)
        assert not plan.applies_in_process()

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("crash")
        with pytest.raises(ValueError):
            FaultPlan.parse("frobnicate=1")
        with pytest.raises(ValueError):
            FaultPlan.parse("crash=2.0")

    def test_describe_names_active_faults(self):
        assert "no-op" in FaultPlan().describe()
        desc = FaultPlan(seed=7, crash=0.1, timeout_at=(3,)).describe()
        assert "seed=7" in desc and "crash=0.1" in desc
        assert "timeout_at=(3,)" in desc

    def test_flaky_factor_bounded_and_deterministic(self):
        plan = FaultPlan(seed=1, flaky=1.0, flaky_rel=0.05)
        for i in range(100):
            f = plan.flaky_factor(i)
            assert 0.95 <= f <= 1.05
            assert f == plan.flaky_factor(i)


class TestEvaluateWithFaults:
    COMP = small_conv()

    def _candidate(self):
        task = make_task(budget=4)
        return distinct_candidates(task, 1)[0]

    def test_in_process_faults_raise_standins(self):
        lay, sched = self._candidate()
        for plan, exc in (
            (FaultPlan(crash_at=(0,)), SimulatedCrash),
            (FaultPlan(timeout_at=(0,)), SimulatedTimeout),
            (FaultPlan(os_error_at=(0,)), OSError),
        ):
            with pytest.raises(exc):
                evaluate_with_faults(
                    plan, 0, self.COMP, MACHINE, lay, sched, in_worker=False
                )

    def test_clean_index_matches_direct_evaluation(self):
        lay, sched = self._candidate()
        plan = FaultPlan(crash_at=(5,))
        assert evaluate_with_faults(
            plan, 0, self.COMP, MACHINE, lay, sched, in_worker=False
        ) == evaluate_candidate(self.COMP, MACHINE, lay, sched)

    def test_worker_scope_leaves_serial_clean(self):
        lay, sched = self._candidate()
        plan = FaultPlan(os_error_at=(0,), scope="workers")
        assert evaluate_with_faults(
            plan, 0, self.COMP, MACHINE, lay, sched, in_worker=False
        ) == evaluate_candidate(self.COMP, MACHINE, lay, sched)

    def test_flaky_perturbs_within_bounds(self):
        lay, sched = self._candidate()
        clean = evaluate_candidate(self.COMP, MACHINE, lay, sched)
        plan = FaultPlan(seed=2, flaky=1.0, flaky_rel=0.1)
        lat = evaluate_with_faults(
            plan, 0, self.COMP, MACHINE, lay, sched, in_worker=False
        )
        assert lat != clean
        assert abs(lat / clean - 1.0) <= 0.1


class TestSerialRecovery:
    def test_transient_fault_heals_on_retry(self):
        # indices 0.. : the first attempt faults, the retry (fresh index)
        # succeeds, and the healed value equals the fault-free one
        clean_task = make_task(budget=4)
        cands = distinct_candidates(clean_task, 2)
        clean = clean_task.measure_batch(cands).latencies

        task = make_task(budget=4, fault_plan=FaultPlan(os_error_at=(0,)))
        assert task.measure_batch(cands).latencies == clean
        stats = task.measurer.stats
        assert stats.retries == 1
        assert stats.quarantined == 0
        assert stats.errors == 1
        assert task.measurer.metrics.value("measure.errors.OSError") == 1

    def test_persistent_fault_quarantines_not_aborts(self):
        plan = FaultPlan(os_error=1.0)  # every evaluation fails
        task = make_task(budget=8, fault_plan=plan, max_candidate_retries=2)
        cands = distinct_candidates(task, 3)
        batch = task.measure_batch(cands)
        assert all(math.isinf(lat) for lat in batch.latencies)
        stats = task.measurer.stats
        assert stats.quarantined == 3
        assert stats.retries == 3 * 2
        assert stats.errors == 3 * 3  # every attempt errored
        # the engine is still alive: a clean follow-up batch would work
        assert task.measurements == 3

    def test_simulated_crash_and_timeout_are_retryable(self):
        clean_task = make_task(budget=4)
        cands = distinct_candidates(clean_task, 2)
        clean = clean_task.measure_batch(cands).latencies
        plan = FaultPlan(crash_at=(0,), timeout_at=(2,))
        task = make_task(budget=4, fault_plan=plan)
        assert task.measure_batch(cands).latencies == clean
        m = task.measurer.metrics
        assert m.value("measure.errors.SimulatedCrash") == 1
        assert m.value("measure.errors.SimulatedTimeout") == 1


@pytest.mark.slow
class TestPoolRecovery:
    """Real process-pool faults: worker death, stragglers, degradation."""

    def test_worker_crashes_rebuild_then_degrade_to_serial(self):
        # every pooled evaluation kills its worker; the serial fallback is
        # clean (scope="workers"), so the task still gets real values
        plan = FaultPlan(crash=1.0, scope="workers")
        task = make_task(
            budget=6, jobs=2, fault_plan=plan, max_pool_rebuilds=1,
            backoff_s=0.01, timeout_s=30.0,
        )
        cands = distinct_candidates(task, 4)
        batch = task.measure_batch(cands)
        assert all(math.isfinite(lat) for lat in batch.latencies)
        stats = task.measurer.stats
        assert stats.degraded == 1
        assert stats.pool_failures >= 2  # every rebuild found a dead pool
        assert stats.serial_evaluations == 4
        assert task.measurer.metrics.value(
            "measure.errors.BrokenProcessPool") >= 1
        # degradation is sticky for the task: no more pool attempts
        more = task.measure_batch(distinct_candidates(task, 6)[4:])
        assert all(math.isfinite(lat) for lat in more.latencies)
        assert stats.pool_evaluations == 0

    def test_hung_straggler_is_killed_and_retried(self):
        # evaluation 0 hangs far past the candidate timeout; the engine must
        # kill the pool (freeing the slot), rebuild, and heal on retry
        plan = FaultPlan(timeout_at=(0,), hang_s=60.0, scope="workers")
        task = make_task(
            budget=4, jobs=2, fault_plan=plan, timeout_s=0.5, backoff_s=0.01,
        )
        cands = distinct_candidates(task, 3)
        clean_task = make_task(budget=4)
        clean = clean_task.measure_batch(cands).latencies
        assert task.measure_batch(cands).latencies == clean
        stats = task.measurer.stats
        assert stats.timeouts == 1
        assert stats.pool_rebuilds == 1
        assert stats.quarantined == 0
        assert stats.degraded == 0
