"""Guarded bodies (Select/InBounds/DivisibleBy) through lowering and layouts."""

import numpy as np
import pytest

from repro.exec.reference import evaluate_compute, pad_spatial_ref, zero_stuff_ref
from repro.exec.single_op import run_compute
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.ops.transform import pad_spatial, zero_stuff

rng = np.random.default_rng(11)


class TestPadLowering:
    def test_identity(self):
        x = rng.standard_normal((1, 2, 5, 5))
        comp = pad_spatial(Tensor("x", x.shape), (1, 2), name="p")
        got = run_compute(comp, {"x": x})
        assert np.allclose(got, pad_spatial_ref(x, (1, 2)))

    def test_pad_with_transformed_output_layout(self):
        """Propagation target case: the pad *computes* the exotic layout."""
        x = rng.standard_normal((1, 4, 5, 5))
        comp = pad_spatial(Tensor("x", x.shape), (1, 1), name="p")
        out_shape = comp.output.shape  # (1, 4, 7, 7)
        lay = (
            Layout(out_shape, ["N", "C", "H", "W"])
            .split("C", [2, 2])
            .reorder(["N", "C.0", "H", "W", "C.1"])
        )
        got = run_compute(comp, {"x": x}, {comp.output.name: lay})
        assert np.allclose(got, pad_spatial_ref(x, (1, 1)))

    def test_pad_with_unfolded_output_layout(self):
        """The padding operator absorbing an *unfold* layout (Fig. 5b):
        it pads, converts and duplicates the overlap in one pass."""
        x = rng.standard_normal((1, 2, 6, 6))
        comp = pad_spatial(Tensor("x", x.shape), (1, 1), name="p")
        out_shape = comp.output.shape  # (1, 2, 8, 8)
        lay = (
            Layout(out_shape, ["N", "C", "H", "W"])
            .unfold("H", 5, 3)
            .reorder(["N", "H.t", "C", "H.b", "W"])
        )
        got = run_compute(comp, {"x": x}, {comp.output.name: lay})
        assert np.allclose(got, pad_spatial_ref(x, (1, 1)))

    def test_pad_with_schedule(self):
        x = rng.standard_normal((1, 2, 6, 6))
        comp = pad_spatial(Tensor("x", x.shape), (2, 2), name="p")
        sched = LoopSchedule().split("s3", [5, 2]).reorder(
            ["s0", "s1", "s2", "s3.0", "s3.1"]
        ).vectorize("s3.1").parallel("s0")
        got = run_compute(comp, {"x": x}, {}, sched)
        assert np.allclose(got, pad_spatial_ref(x, (2, 2)))


class TestZeroStuffLowering:
    @pytest.mark.parametrize("stride", [2, 3])
    def test_identity(self, stride):
        x = rng.standard_normal((1, 2, 4, 4))
        comp = zero_stuff(Tensor("x", x.shape), stride, name="z")
        got = run_compute(comp, {"x": x})
        assert np.allclose(got, zero_stuff_ref(x, stride))

    def test_with_layout(self):
        x = rng.standard_normal((1, 4, 3, 3))
        comp = zero_stuff(Tensor("x", x.shape), 2, name="z")
        out_shape = comp.output.shape
        lay = Layout(out_shape).reorder([0, 2, 3, 1])
        got = run_compute(comp, {"x": x}, {comp.output.name: lay})
        assert np.allclose(got, zero_stuff_ref(x, 2))

    def test_guard_semantics_in_reference(self):
        x = np.ones((1, 1, 2, 2))
        out = evaluate_compute(zero_stuff(Tensor("x", x.shape), 2, name="z"), {"x": x})
        assert out.sum() == 4  # original elements only, zeros in between
        assert out[0, 0, 1, 1] == 0
