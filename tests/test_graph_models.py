"""Graph structure, builder, model zoo."""

import numpy as np
import pytest

from repro.exec.graph_runner import random_inputs, run_graph_reference
from repro.graph.builder import GraphBuilder
from repro.graph.graph import Graph, GraphError
from repro.graph.models import bert_tiny, mobilenet_v2, resnet18, resnet3d18
from repro.ir.tensor import Tensor
from repro.ops.elementwise import relu
from repro.ops.transform import layout_conversion


class TestGraph:
    def test_add_and_queries(self):
        g = Graph("g")
        t = Tensor("x", (2, 3), role="input")
        g.add_tensor(t)
        r = relu(t, name="r")
        g.add(r)
        assert g.producer_of(r.output.name) is r
        assert g.consumers_of("x") == [r]
        assert [x.name for x in g.graph_inputs()] == ["x"]
        assert [x.name for x in g.graph_outputs()] == [r.output.name]

    def test_duplicate_node_rejected(self):
        g = Graph("g")
        t = Tensor("x", (2,), role="input")
        g.add(relu(t, name="r"))
        with pytest.raises(GraphError):
            g.add(relu(t, name="r"))

    def test_insert_before_rewires(self):
        g = Graph("g")
        t = Tensor("x", (2, 3), role="input")
        g.add_tensor(t)
        r = relu(t, name="r")
        g.add(r)
        conv = layout_conversion(t, name="cv")
        g.insert_before(conv, r, "x")
        assert g.nodes[0] is conv
        assert {i.name for i in r.inputs} == {conv.output.name}
        g.validate()

    def test_insert_before_wrong_tensor(self):
        g = Graph("g")
        t = Tensor("x", (2, 3), role="input")
        g.add_tensor(t)
        r = relu(t, name="r")
        g.add(r)
        with pytest.raises(GraphError):
            g.insert_before(layout_conversion(t, name="cv"), r, "nope")

    def test_validate_order(self):
        g = Graph("g")
        a = Tensor("a", (2,), role="input")
        r1 = relu(a, name="r1")
        r2 = relu(r1.output, name="r2")
        g.add_tensor(a)
        # insert out of order by hand
        g.add(r1)
        g.add(r2)
        g.validate()

    def test_summary_and_flops(self):
        b = GraphBuilder("s")
        x = b.input((1, 2, 8, 8))
        b.conv2d(x, 4, 3)
        g = b.build()
        assert "conv2d" in g.summary()
        assert g.flops() > 0


class TestBuilder:
    def test_pad_skipped_when_zero(self):
        b = GraphBuilder("g")
        x = b.input((1, 2, 8, 8))
        y = b.conv2d(x, 4, 1, pad=0)
        g = b.build()
        assert not any("pad" in n.name for n in g.nodes)

    def test_conv_bn_act_chain(self):
        b = GraphBuilder("g")
        x = b.input((1, 2, 8, 8))
        b.conv_bn_act(x, 4, 3, act="relu6")
        g = b.build()
        kinds = [n.name.split("_")[0] for n in g.nodes]
        assert kinds == ["pad", "conv2d", "bn", "relu6"]

    def test_residual_numerics(self):
        b = GraphBuilder("g")
        x = b.input((1, 4, 6, 6))
        y = b.conv2d(x, 4, 3)
        z = b.add(y, x)
        b.relu(z)
        g = b.build()
        inputs = random_inputs(g, 0)
        vals = run_graph_reference(g, inputs)
        out = g.graph_outputs()[0]
        assert np.isfinite(vals[out.name]).all()

    def test_attention_shapes(self):
        b = GraphBuilder("g")
        seq, hidden, heads = 4, 8, 2
        x = b.input((seq, hidden))
        q = b.reshape_heads(x, heads, seq)
        assert q.shape == (heads, seq, hidden // heads)
        back = b.merge_heads(q, heads, seq)
        assert back.shape == (seq, hidden)
        g = b.build()
        inputs = random_inputs(g, 1)
        vals = run_graph_reference(g, inputs)
        # split followed by merge is the identity
        assert np.allclose(vals[back.name], inputs["input"])

    def test_transpose_last(self):
        b = GraphBuilder("g")
        x = b.input((2, 3, 5))
        y = b.transpose_last(x)
        g = b.build()
        vals = run_graph_reference(g, random_inputs(g, 2))
        ref = np.swapaxes(vals["input"], 1, 2)
        assert np.allclose(vals[y.name], ref)


class TestModelZoo:
    def test_resnet18_scaled(self):
        g = resnet18(batch=1, image=32, width=8, num_classes=10)
        g.validate()
        out = g.graph_outputs()[0]
        assert out.shape == (1, 10)
        assert len(g.complex_nodes()) == 21

    def test_mobilenet_v2_scaled(self):
        g = mobilenet_v2(batch=1, image=32, width_mult=0.25, num_classes=10)
        g.validate()
        assert g.graph_outputs()[0].shape == (1, 10)
        assert any("dwconv" in n.name for n in g.nodes)

    def test_bert_tiny_structure(self):
        g = bert_tiny(batch=1, seq=8)
        g.validate()
        assert g.graph_outputs()[0].shape == (8, 128)
        assert sum(1 for n in g.nodes if "gemm" in n.tags) >= 4

    def test_resnet3d_scaled(self):
        g = resnet3d18(batch=1, frames=4, image=16, width=4, num_classes=5)
        g.validate()
        assert g.graph_outputs()[0].shape == (1, 5)

    def test_bert_numerics_small(self):
        """A 1-layer tiny-BERT forward pass evaluates without NaN."""
        from repro.graph.models import bert

        g = bert(batch=1, seq=4, hidden=8, layers=1, heads=2, ff=16)
        vals = run_graph_reference(g, random_inputs(g, 0))
        out = g.graph_outputs()[0]
        assert np.isfinite(vals[out.name]).all()

    def test_resnet_image_check(self):
        with pytest.raises(ValueError):
            resnet18(image=100)
