"""Compile-as-a-service: the coordinator/worker tuning fleet.

Three layers, mirroring the failure-semantics table in the README:

* protocol -- framing is the trust boundary: truncated, oversized,
  non-JSON and non-dict frames must surface as :class:`ProtocolError`
  (never a hang or a crash), and the hello handshake must reject
  version/role mismatches while the coordinator keeps serving.
* dispatcher robustness -- duplicate lease completions and stale results
  from superseded workers are counted and dropped; a worker registering
  again under its own name heals sticky degradation.
* end to end -- a fleet-tuned result is bit-identical to the serial
  tuner, under injected worker crashes/hangs/errors too, and a killed
  coordinator resumes its jobs from the run registry bit-identically.
"""

import json
import math
import os
import re
import signal
import socket
import struct
import subprocess
import sys
import threading
import time

import pytest

from repro.cli import _single_op
from repro.machine.spec import get_machine
from repro.obs.runstore import LEASES_FILE, STATUS_RUNNING, RunRecord
from repro.obs.watch import (
    WatchState,
    evaluate,
    render_watch_frame,
)
from repro.serve import protocol
from repro.serve.client import (
    connect,
    fetch_status,
    parse_addr,
    submit_and_wait,
)
from repro.serve.coordinator import (
    Coordinator,
    FleetDispatcher,
    LocalFleet,
    ServeOptions,
)
from repro.tuning.baselines import tune_alt
from repro.tuning.faults import FaultPlan
from repro.tuning.measurer import MeasureOptions
from repro.tuning.task import TuningTask

MACHINE = get_machine("intel_cpu")
SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")


def serial_reference(budget=48, seed=0):
    return tune_alt(
        _single_op("gmm", 8, 16), MACHINE, budget=budget, seed=seed,
        measure=MeasureOptions(jobs=1, cache_dir=None),
    )


# ---------------------------------------------------------------------------
# protocol framing
# ---------------------------------------------------------------------------

def frame_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


def test_frame_roundtrip():
    a, b = frame_pair()
    protocol.send_frame(a, {"type": "x", "n": 3, "latencies": [1.0, None]})
    assert protocol.recv_frame(b) == {
        "type": "x", "n": 3, "latencies": [1.0, None]
    }
    a.close()
    assert protocol.recv_frame(b) is None  # clean EOF
    b.close()


def test_truncated_frame_is_protocol_error():
    a, b = frame_pair()
    # a length prefix promising 100 bytes, then the connection dies
    a.sendall(struct.pack(">I", 100) + b"partial")
    a.close()
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_frame(b)
    b.close()


def test_oversized_frame_rejected_both_ways():
    a, b = frame_pair()
    a.sendall(struct.pack(">I", protocol.MAX_FRAME_BYTES + 1))
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_frame(b)
    with pytest.raises(protocol.ProtocolError):
        protocol.send_frame(
            a, {"blob": "x" * (protocol.MAX_FRAME_BYTES + 1)}
        )
    a.close()
    b.close()


@pytest.mark.parametrize("body", [b"not json at all", b"[1, 2, 3]", b"42"])
def test_non_object_bodies_are_protocol_errors(body):
    a, b = frame_pair()
    a.sendall(struct.pack(">I", len(body)) + body)
    with pytest.raises(protocol.ProtocolError):
        protocol.recv_frame(b)
    a.close()
    b.close()


def test_payload_roundtrip_and_garbage():
    obj = {"layouts": [1, 2], "nested": (3, 4)}
    assert protocol.unpack_payload(protocol.pack_payload(obj)) == obj
    with pytest.raises(protocol.ProtocolError):
        protocol.unpack_payload("definitely-not-base64-pickle!")


def test_check_hello_rejections():
    ok = protocol.hello("worker", name="w0")
    assert protocol.check_hello(ok) is None
    assert protocol.check_hello(None) is not None
    assert protocol.check_hello({"type": "submit"}) is not None
    bad_version = dict(ok, version=protocol.PROTOCOL_VERSION + 1)
    assert "version" in protocol.check_hello(bad_version)
    assert protocol.check_hello(dict(ok, role="admin")) is not None
    nameless = protocol.hello("worker")
    assert protocol.check_hello(nameless) is not None


def test_parse_addr():
    assert parse_addr("10.0.0.1:99") == ("10.0.0.1", 99)
    assert parse_addr(":99") == ("127.0.0.1", 99)
    with pytest.raises(ValueError):
        parse_addr("no-port")
    with pytest.raises(ValueError):
        parse_addr("host:http")
    with pytest.raises(ValueError):
        parse_addr("9999")  # no separator at all


# ---------------------------------------------------------------------------
# client: connect/retry, protocol-error surfacing, malformed replies
# ---------------------------------------------------------------------------

class StubServer:
    """A one-thread TCP stub whose per-connection behaviour is scripted.

    ``handler(conn)`` runs for every accepted connection; the stub counts
    accepts so tests can assert how many times a client really dialed in.
    """

    def __init__(self, handler):
        self.handler = handler
        self.accepts = 0
        self.sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self.sock.bind(("127.0.0.1", 0))
        self.sock.listen(8)
        self.port = self.sock.getsockname()[1]
        self._stop = threading.Event()
        self.thread = threading.Thread(target=self._serve, daemon=True)
        self.thread.start()

    def _serve(self):
        self.sock.settimeout(0.1)
        while not self._stop.is_set():
            try:
                conn, _ = self.sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            self.accepts += 1
            conn.settimeout(5.0)
            try:
                self.handler(conn)
            except (OSError, protocol.ProtocolError):
                pass
            finally:
                conn.close()

    def close(self):
        self._stop.set()
        self.sock.close()
        self.thread.join(timeout=5)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def welcome_handler(conn):
    hello = protocol.recv_frame(conn)
    assert hello["type"] == protocol.HELLO
    protocol.send_frame(conn, {"type": protocol.WELCOME})
    # keep the connection open until the client hangs up
    while protocol.recv_frame(conn) is not None:
        pass


def closed_port():
    """A localhost port with nothing listening on it."""
    probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def test_connect_handshake_ok():
    with StubServer(welcome_handler) as srv:
        sock = connect(("127.0.0.1", srv.port), timeout=5.0)
        sock.close()
        assert srv.accepts == 1


def test_connect_refused_without_retries_raises_immediately():
    port = closed_port()
    t0 = time.monotonic()
    with pytest.raises(OSError):
        connect(("127.0.0.1", port), timeout=2.0)
    assert time.monotonic() - t0 < 1.0  # no hidden backoff by default


def test_connect_retries_until_server_appears():
    port = closed_port()
    srv_holder = {}

    def bring_up():
        time.sleep(0.3)
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", port))
        s.listen(1)
        srv_holder["sock"] = s
        conn, _ = s.accept()
        conn.settimeout(5.0)
        welcome_handler(conn)
        conn.close()

    thread = threading.Thread(target=bring_up, daemon=True)
    thread.start()
    try:
        sock = connect(("127.0.0.1", port), timeout=5.0,
                       retries=20, retry_delay=0.05)
        sock.close()
    finally:
        thread.join(timeout=10)
        if "sock" in srv_holder:
            srv_holder["sock"].close()


def test_connect_retries_exhausted_raise_the_connect_error():
    port = closed_port()
    with pytest.raises(OSError):
        connect(("127.0.0.1", port), timeout=2.0,
                retries=2, retry_delay=0.01)


def test_connect_rejection_is_not_retried():
    def reject(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(
            conn, {"type": protocol.REJECT, "reason": "version mismatch"}
        )

    with StubServer(reject) as srv:
        with pytest.raises(ConnectionError, match="version mismatch"):
            connect(("127.0.0.1", srv.port), timeout=5.0,
                    retries=5, retry_delay=0.01)
        assert srv.accepts == 1  # the daemon said no; asking again is noise


def test_connect_server_slams_door_is_connection_error():
    def slam(conn):
        protocol.recv_frame(conn)  # read the hello, then just hang up

    with StubServer(slam) as srv:
        with pytest.raises(ConnectionError, match="connection closed"):
            connect(("127.0.0.1", srv.port), timeout=5.0)


def test_connect_malformed_welcome_surfaces_protocol_error():
    def garbage(conn):
        protocol.recv_frame(conn)
        body = b"<html>this is not a frame"
        conn.sendall(struct.pack(">I", len(body)) + body)

    with StubServer(garbage) as srv:
        with pytest.raises(protocol.ProtocolError):
            connect(("127.0.0.1", srv.port), timeout=5.0)


def test_connect_truncated_welcome_surfaces_protocol_error():
    def truncate(conn):
        protocol.recv_frame(conn)
        conn.sendall(struct.pack(">I", 500) + b"short")  # then close

    with StubServer(truncate) as srv:
        with pytest.raises(protocol.ProtocolError):
            connect(("127.0.0.1", srv.port), timeout=5.0)


def test_submit_and_wait_coordinator_closes_before_ack():
    def vanish(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {"type": protocol.WELCOME})
        protocol.recv_frame(conn)  # swallow the submit, then disappear

    with StubServer(vanish) as srv:
        with pytest.raises(ConnectionError, match="before acknowledging"):
            submit_and_wait(("127.0.0.1", srv.port), {"kind": "tune"},
                            timeout=5.0)


def test_submit_and_wait_coordinator_closes_mid_job():
    def tease(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {"type": protocol.WELCOME})
        protocol.recv_frame(conn)
        protocol.send_frame(
            conn, {"type": protocol.JOB_QUEUED, "ok": True, "job": "j0"}
        )
        protocol.send_frame(conn, {"type": protocol.STATUS_REPLY,
                                   "status": {}})  # unrelated chatter

    with StubServer(tease) as srv:
        with pytest.raises(ConnectionError, match="mid-job"):
            submit_and_wait(("127.0.0.1", srv.port), {"kind": "tune"},
                            timeout=5.0)


def test_submit_and_wait_refusal_is_value_error_with_reason():
    def refuse(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {"type": protocol.WELCOME})
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {
            "type": protocol.JOB_QUEUED, "ok": False,
            "error": "unknown op 'nope'",
        })

    with StubServer(refuse) as srv:
        with pytest.raises(ValueError, match="unknown op"):
            submit_and_wait(("127.0.0.1", srv.port), {"kind": "tune"},
                            timeout=5.0)


def test_submit_and_wait_skips_interleaved_frames():
    def chatty(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {"type": protocol.WELCOME})
        protocol.recv_frame(conn)
        protocol.send_frame(
            conn, {"type": protocol.JOB_QUEUED, "ok": True, "job": "j0"}
        )
        protocol.send_frame(conn, {"type": protocol.STATUS_REPLY,
                                   "status": {"live_workers": 1}})
        protocol.send_frame(conn, {"type": protocol.JOB_RESULT, "ok": True,
                                   "job": "j0", "best_latency": 1.25e-6})

    with StubServer(chatty) as srv:
        res = submit_and_wait(("127.0.0.1", srv.port), {"kind": "tune"},
                              timeout=5.0)
        assert res["ok"] and res["best_latency"] == 1.25e-6


def test_fetch_status_closed_mid_reply():
    def cutoff(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {"type": protocol.WELCOME})
        protocol.recv_frame(conn)  # read the status request, then die

    with StubServer(cutoff) as srv:
        with pytest.raises(ConnectionError, match="during status"):
            fetch_status(("127.0.0.1", srv.port), timeout=5.0)


def test_fetch_status_null_status_payload_is_empty_dict():
    def reply_null(conn):
        protocol.recv_frame(conn)
        protocol.send_frame(conn, {"type": protocol.WELCOME})
        protocol.recv_frame(conn)
        protocol.send_frame(
            conn, {"type": protocol.STATUS_REPLY, "status": None}
        )

    with StubServer(reply_null) as srv:
        assert fetch_status(("127.0.0.1", srv.port), timeout=5.0) == {}


# ---------------------------------------------------------------------------
# coordinator handshake hardening
# ---------------------------------------------------------------------------

def coordinator(**kw):
    kw.setdefault("options", ServeOptions(degrade_wait_s=0.05))
    return Coordinator(**kw).start()


def raw_connect(port):
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def test_malformed_first_frame_rejected_and_coordinator_survives():
    coord = coordinator()
    try:
        sock = raw_connect(coord.port)
        sock.sendall(struct.pack(">I", 12) + b"not json!!!!")
        reply = protocol.recv_frame(sock)
        assert reply["type"] == protocol.REJECT
        sock.close()
        # a well-formed client is still served afterwards
        from repro.serve.client import fetch_status

        status = fetch_status(("127.0.0.1", coord.port))
        assert status["live_workers"] == 0
    finally:
        coord.stop()


def test_version_mismatch_hello_rejected():
    coord = coordinator()
    try:
        sock = raw_connect(coord.port)
        bad = protocol.hello("worker", name="w0")
        bad["version"] = protocol.PROTOCOL_VERSION + 7
        protocol.send_frame(sock, bad)
        reply = protocol.recv_frame(sock)
        assert reply["type"] == protocol.REJECT
        assert "version" in reply["reason"]
        sock.close()
    finally:
        coord.stop()


def test_bad_job_refused():
    coord = coordinator()
    try:
        with pytest.raises(ValueError, match="refused"):
            submit_and_wait(
                ("127.0.0.1", coord.port),
                {"kind": "tune", "op": "nope"}, timeout=10,
            )
    finally:
        coord.stop()


def test_client_socket_multiplexes_status_and_result():
    """Status polls and the job result share one client socket; the
    per-client send lock must keep the frame stream parseable while the
    runner and the client loop send concurrently."""
    coord = coordinator()  # no workers: degrades to local serial
    try:
        sock = raw_connect(coord.port)
        protocol.send_frame(sock, protocol.hello("client"))
        assert protocol.recv_frame(sock)["type"] == protocol.WELCOME
        protocol.send_frame(sock, {"type": protocol.SUBMIT, "job": {
            "kind": "tune", "op": "gmm", "channels": 8, "size": 16,
            "budget": 32, "seed": 0, "machine": "intel_cpu",
        }})
        queued = protocol.recv_frame(sock)
        assert queued["type"] == protocol.JOB_QUEUED and queued["ok"]
        result = None
        deadline = time.monotonic() + 120
        while result is None and time.monotonic() < deadline:
            protocol.send_frame(sock, {"type": protocol.STATUS})
            frame = protocol.recv_frame(sock)  # raises on a torn stream
            assert frame is not None
            if frame["type"] == protocol.JOB_RESULT:
                result = frame
            else:
                assert frame["type"] == protocol.STATUS_REPLY
                time.sleep(0.005)
        assert result is not None and result["ok"]
        sock.close()
    finally:
        coord.stop()


# ---------------------------------------------------------------------------
# dispatcher robustness: duplicates, stale results, degradation healing
# ---------------------------------------------------------------------------

def scripted_worker(dispatcher, name):
    """Register a fake worker over a socketpair; returns the worker end."""
    coord_end, worker_end = socket.socketpair()
    worker_end.settimeout(10.0)
    dispatcher.register_worker(name, coord_end)
    return worker_end


def dispatch_one_lease(dispatcher, worker_end, n=4):
    """Run one evaluate() against a scripted worker; returns the thread,
    the result holder, and the lease frame the worker received."""
    task = TuningTask(
        _single_op("gmm", 8, 16), MACHINE,
        measure=MeasureOptions(jobs=1, cache_dir=None,
                               dispatcher=dispatcher),
    )
    measurer = task.measurer
    candidates = bench_candidates(n)
    holder = {}

    def run():
        holder["out"], holder["leftover"] = dispatcher.evaluate(
            measurer, candidates, list(range(n))
        )

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    lease_frame = protocol.recv_frame(worker_end)
    assert lease_frame["type"] == protocol.LEASE
    return thread, holder, lease_frame


_CANDIDATES = None


def bench_candidates(n):
    """A deterministic candidate list (layouts, schedule) for dispatch."""
    global _CANDIDATES
    if _CANDIDATES is None or len(_CANDIDATES) < n:
        import random

        task = TuningTask(_single_op("gmm", 8, 16), MACHINE)
        layouts = {}
        loop_space = task.loop_space_for(layouts)
        space = loop_space.space()
        rng = random.Random(0)
        out, seen = [], set()
        while len(out) < max(n, 8):
            sched = loop_space.schedule(space.sample(rng))
            sig = task._signature(layouts, sched)
            if sig in seen:
                continue
            seen.add(sig)
            out.append((layouts, sched))
        _CANDIDATES = out
    return _CANDIDATES[:n]


def test_duplicate_lease_completion_is_deduped():
    dispatcher = FleetDispatcher(ServeOptions(lease_size=8))
    worker_end = scripted_worker(dispatcher, "fw")
    thread, holder, lease_frame = dispatch_one_lease(dispatcher, worker_end)
    result = {
        "type": protocol.LEASE_RESULT, "lease": lease_frame["lease"],
        "worker": "fw", "latencies": [0.001, 0.002, 0.003, 0.004],
        "faults": {},
    }
    protocol.send_frame(worker_end, result)
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert holder["out"] == {0: 0.001, 1: 0.002, 2: 0.003, 3: 0.004}
    assert holder["leftover"] == []
    # replaying the exact same completion must be counted and dropped
    protocol.send_frame(worker_end, result)
    deadline = time.monotonic() + 5
    while (dispatcher.counters["duplicate_completions"] == 0
           and time.monotonic() < deadline):
        time.sleep(0.01)
    assert dispatcher.counters["duplicate_completions"] == 1
    assert dispatcher.live_workers() == 1  # nobody got evicted over it
    worker_end.close()


def test_repeat_job_with_identical_candidates_is_not_deduped():
    """Idempotency keys are deterministic hashes of (task, candidates), so
    a second identical batch (a client retry, a repeat job) regenerates
    them; the dedup set must be scoped per batch or every completion of
    the repeat is dropped as a 'duplicate' and the batch stalls out."""
    dispatcher = FleetDispatcher(ServeOptions(lease_size=8))
    worker_end = scripted_worker(dispatcher, "fw")
    for _ in range(2):
        thread, holder, lease_frame = dispatch_one_lease(
            dispatcher, worker_end)
        protocol.send_frame(worker_end, {
            "type": protocol.LEASE_RESULT, "lease": lease_frame["lease"],
            "worker": "fw", "latencies": [0.001, 0.002, 0.003, 0.004],
            "faults": {},
        })
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert holder["out"] == {0: 0.001, 1: 0.002, 2: 0.003, 3: 0.004}
        assert holder["leftover"] == []
    assert dispatcher.counters["leases_completed"] == 2
    assert dispatcher.counters["duplicate_completions"] == 0
    assert not dispatcher._completed_keys  # no unbounded daemon growth
    worker_end.close()


def test_malformed_lease_id_does_not_kill_receiver():
    """A worker frame whose lease id is a JSON array/object (unhashable)
    must be dropped as unknown, not raise inside the receiver thread --
    a dead receiver leaves the worker a zombie until heartbeat timeout."""
    dispatcher = FleetDispatcher(ServeOptions(lease_size=8))
    worker_end = scripted_worker(dispatcher, "fw")
    thread, holder, lease_frame = dispatch_one_lease(dispatcher, worker_end)
    protocol.send_frame(worker_end, {
        "type": protocol.LEASE_RESULT, "lease": [1, 2],
        "latencies": [0.001], "faults": {},
    })
    protocol.send_frame(worker_end, {
        "type": protocol.LEASE_ERROR, "lease": {"id": 1}, "kind": "X",
    })
    # the real completion still lands on the same, live connection
    protocol.send_frame(worker_end, {
        "type": protocol.LEASE_RESULT, "lease": lease_frame["lease"],
        "worker": "fw", "latencies": [0.001, 0.002, 0.003, 0.004],
        "faults": {},
    })
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert holder["out"][0] == 0.001
    assert dispatcher.live_workers() == 1
    worker_end.close()


def test_stale_result_from_superseded_worker_dropped():
    dispatcher = FleetDispatcher(ServeOptions(lease_size=8))
    worker_end = scripted_worker(dispatcher, "fw")
    thread, holder, lease_frame = dispatch_one_lease(dispatcher, worker_end)
    # the worker reconnects under its own name while its lease is in
    # flight: the old connection is superseded, the lease re-dispatched
    fresh_end = scripted_worker(dispatcher, "fw")
    redispatch = protocol.recv_frame(fresh_end)
    assert redispatch["type"] == protocol.LEASE
    assert redispatch["lease"] == lease_frame["lease"]
    # a result frame for a lease the sender no longer owns is stale
    handle = dispatcher._workers["fw"]
    stale = {
        "type": protocol.LEASE_RESULT, "lease": lease_frame["lease"],
        "worker": "fw-old", "latencies": [9.0, 9.0, 9.0, 9.0],
        "faults": {},
    }

    class Impostor:
        name = "fw-old"

    dispatcher._on_lease_result(Impostor(), stale)
    assert dispatcher.counters["stale_results"] == 1
    # the legitimate holder still completes with the real values
    protocol.send_frame(fresh_end, {
        "type": protocol.LEASE_RESULT, "lease": redispatch["lease"],
        "worker": "fw", "latencies": [0.001, 0.002, 0.003, 0.004],
        "faults": {},
    })
    thread.join(timeout=10)
    assert not thread.is_alive()
    assert holder["out"][0] == 0.001
    assert handle.alive
    worker_end.close()
    fresh_end.close()


def test_supersede_does_not_charge_the_lease():
    dispatcher = FleetDispatcher(ServeOptions(lease_size=8))
    worker_end = scripted_worker(dispatcher, "fw")
    thread, holder, lease_frame = dispatch_one_lease(dispatcher, worker_end)
    for _ in range(3):  # serial reconnect storms must never quarantine
        worker_end = scripted_worker(dispatcher, "fw")
        lease_frame = protocol.recv_frame(worker_end)
    assert dispatcher.counters["lease_quarantined"] == 0
    assert dispatcher.counters["lease_retries"] == 0
    protocol.send_frame(worker_end, {
        "type": protocol.LEASE_RESULT, "lease": lease_frame["lease"],
        "worker": "fw", "latencies": [0.001, 0.002, 0.003, 0.004],
        "faults": {},
    })
    thread.join(timeout=10)
    assert holder["out"][3] == 0.004


def test_degradation_heals_on_registration():
    dispatcher = FleetDispatcher(ServeOptions(degrade_wait_s=0.01))
    task = TuningTask(
        _single_op("gmm", 8, 16), MACHINE,
        measure=MeasureOptions(jobs=1, cache_dir=None,
                               dispatcher=dispatcher),
    )
    out, leftover = dispatcher.evaluate(
        task.measurer, bench_candidates(4), [0, 1, 2, 3]
    )
    assert out == {} and leftover == [0, 1, 2, 3]  # nobody home: degrade
    assert dispatcher.degraded
    scripted_worker(dispatcher, "fw")
    assert not dispatcher.degraded  # re-admission heals the fleet


def test_for_worker_decorrelates_but_keeps_pins():
    plan = FaultPlan.parse("seed=7,crash=0.5,crash_at=3")
    a0 = plan.for_worker("w0")
    b0 = plan.for_worker("w1")
    a1 = plan.for_worker("w0", generation=1)
    assert len({plan.seed, a0.seed, b0.seed, a1.seed}) == 4
    assert a0.crash_at == plan.crash_at == (3,)
    assert a0.crash == plan.crash


# ---------------------------------------------------------------------------
# end to end: fleet == serial, faults and all
# ---------------------------------------------------------------------------

def wait_for_workers(coord, n, timeout=30.0):
    deadline = time.monotonic() + timeout
    while (coord.dispatcher.live_workers() < n
           and time.monotonic() < deadline):
        time.sleep(0.02)
    assert coord.dispatcher.live_workers() >= 1


def test_fleet_tune_bit_identical_to_serial():
    ref = serial_reference()
    coord = Coordinator(options=ServeOptions(lease_size=8)).start()
    fleet = LocalFleet("127.0.0.1", coord.port, 2).start()
    try:
        wait_for_workers(coord, 2)
        res = submit_and_wait(("127.0.0.1", coord.port), {
            "kind": "tune", "op": "gmm", "channels": 8, "size": 16,
            "budget": 48, "seed": 0, "machine": "intel_cpu",
        }, timeout=120)
        assert res["ok"]
        assert res["best_latency"] == ref.best_latency
        assert res["measurements"] == ref.measurements
        assert coord.dispatcher.counters["leases_completed"] > 0
    finally:
        coord.stop()
        fleet.stop()


def test_zero_worker_fleet_degrades_to_serial():
    ref = serial_reference()
    coord = Coordinator(options=ServeOptions(degrade_wait_s=0.05)).start()
    try:
        res = submit_and_wait(("127.0.0.1", coord.port), {
            "kind": "tune", "op": "gmm", "channels": 8, "size": 16,
            "budget": 48, "seed": 0, "machine": "intel_cpu",
        }, timeout=120)
        assert res["ok"]
        assert res["best_latency"] == ref.best_latency
        assert res["measurements"] == ref.measurements
        assert coord.dispatcher.degraded
        assert coord.dispatcher.counters["degraded_batches"] > 0
    finally:
        coord.stop()


@pytest.mark.slow
def test_chaos_fleet_bit_identical_and_observable(tmp_path):
    """Crashing, hanging and erroring workers force retries/evictions but
    never change a single measured value; the run registry captures the
    lease log and an alert-free health file."""
    ref = serial_reference()
    store = str(tmp_path / "runs")
    coord = Coordinator(
        store_root=store,
        options=ServeOptions(lease_size=8, lease_timeout_s=2.0),
    ).start()
    fleet = LocalFleet(
        "127.0.0.1", coord.port, 3,
        fault_spec="seed=7,crash=0.05,timeout=0.05,oserror=0.05,hang=0.4",
    ).start()
    try:
        wait_for_workers(coord, 3)
        res = submit_and_wait(("127.0.0.1", coord.port), {
            "kind": "tune", "op": "gmm", "channels": 8, "size": 16,
            "budget": 48, "seed": 0, "machine": "intel_cpu",
        }, timeout=200)
        assert res["ok"]
        assert res["best_latency"] == ref.best_latency
        assert res["measurements"] == ref.measurements
    finally:
        coord.stop()
        fleet.stop()
    run_dir = os.path.join(store, sorted(os.listdir(store))[-1])
    health = json.load(open(os.path.join(run_dir, "health.json")))
    assert health["status"] == "ok"
    assert not health.get("alerts")
    assert health["progress"]["workers"]["live"] >= 1
    rows = [json.loads(line) for line in
            open(os.path.join(run_dir, "leases.jsonl"))]
    events = {r["event"] for r in rows}
    assert "dispatch" in events and "complete" in events
    assert all(r["worker"] for r in rows if r["event"] == "dispatch")


@pytest.mark.slow
def test_serve_resume_bit_identical(tmp_path):
    """SIGKILL the coordinator mid-job; --resume finishes the run from its
    checkpoint with exactly the serial tuner's numbers."""
    ref = serial_reference(budget=200, seed=3)
    store = str(tmp_path / "runs")
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC_ROOT + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "start", "--store", store,
         "--workers", "2", "--device-ms", "2"],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.DEVNULL,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        port = int(re.search(r":(\d+)\s*$", line.strip()).group(1))
        sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        protocol.send_frame(sock, protocol.hello("client"))
        assert protocol.recv_frame(sock)["type"] == protocol.WELCOME
        protocol.send_frame(sock, {"type": protocol.SUBMIT, "job": {
            "kind": "tune", "op": "gmm", "channels": 8, "size": 16,
            "budget": 200, "seed": 3, "machine": "intel_cpu",
        }})
        assert protocol.recv_frame(sock)["ok"]
        # wait until at least one checkpointed round exists, then murder
        run_dir = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            runs = sorted(os.listdir(store)) if os.path.isdir(store) else []
            if runs:
                candidate = os.path.join(store, runs[-1])
                if os.path.exists(os.path.join(candidate, "checkpoint.pkl")):
                    run_dir = candidate
                    break
            time.sleep(0.1)
        assert run_dir is not None, "no checkpoint appeared before timeout"
        time.sleep(1.0)  # a few more rounds mid-flight
        sock.close()
    finally:
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=10)
    manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
    assert manifest["status"] == "running"  # dirty: the crash left it live
    out = subprocess.run(
        [sys.executable, "-m", "repro", "serve", "start", "--store", store,
         "--workers", "2", "--resume", "--max-jobs", "1"],
        env=env, capture_output=True, text=True, timeout=300,
    )
    assert out.returncode == 0, out.stderr[-2000:]
    assert "re-enqueued 1" in out.stdout
    manifest = json.load(open(os.path.join(run_dir, "manifest.json")))
    assert manifest["status"] == "completed"
    assert manifest["resumes"] == 1
    task = json.load(open(os.path.join(run_dir, "result.json")))
    gmm = task["tasks"]["gmm"]
    assert gmm["best_latency"] == ref.best_latency
    assert gmm["measurements"] == ref.measurements


def test_quarantine_after_max_retries():
    """A lease that can never complete (its only worker eats it and dies,
    repeatedly) ends up quarantined as inf instead of hanging the batch."""
    dispatcher = FleetDispatcher(ServeOptions(
        lease_size=4, max_lease_retries=2, backoff_s=0.01,
        degrade_wait_s=0.2,
    ))
    stop = threading.Event()

    def devourer():
        gen = 0
        while not stop.is_set():
            end = scripted_worker(dispatcher, f"eater{gen}")
            try:
                frame = protocol.recv_frame(end)
            except (protocol.ProtocolError, OSError):
                continue
            if frame is None:
                continue
            end.close()  # crash with the lease in its teeth
            gen += 1

    thread = threading.Thread(target=devourer, daemon=True)
    thread.start()
    task = TuningTask(
        _single_op("gmm", 8, 16), MACHINE,
        measure=MeasureOptions(jobs=1, cache_dir=None,
                               dispatcher=dispatcher),
    )
    try:
        out, leftover = dispatcher.evaluate(
            task.measurer, bench_candidates(4), [0, 1, 2, 3]
        )
    finally:
        stop.set()
    if leftover:  # the fleet collapsed first: serial fallback owns the rest
        assert dispatcher.counters["degraded_batches"] >= 1
    else:
        assert dispatcher.counters["lease_quarantined"] >= 1
        assert all(math.isinf(v) for v in out.values())
    assert task.measurer.metrics.counter("measure.quarantined").value >= 0


# ---------------------------------------------------------------------------
# Fleet observability: the `workers` watch rule and the lease log
# ---------------------------------------------------------------------------

class TestFleetWatchRules:
    """The watchdog's view of a fleet, driven with synthetic trace events."""

    @staticmethod
    def _ev(name, **attrs):
        return {"kind": "event", "name": name, "ts": 0.0, "span": None,
                "attrs": attrs}

    def _fleet_state(self, workers=2):
        state = WatchState()
        for i in range(workers):
            state.feed(self._ev("worker_registered", worker=f"w{i}"))
        return state

    def test_quiet_without_a_fleet(self):
        # single-process runs never registered a worker: the rule is inert
        state = WatchState()
        for _ in range(10):
            state.feed(self._ev("lease_retry"))
        health = evaluate(state, run_status=STATUS_RUNNING)
        assert health["alerts"] == []
        assert health["progress"]["workers"]["registrations"] == 0

    def test_empty_fleet_is_critical_only_while_live(self):
        state = self._fleet_state(workers=2)
        for i in range(2):
            state.feed(self._ev("worker_evicted", worker=f"w{i}"))
        state.feed(self._ev("fleet_degraded"))
        health = evaluate(state, run_status=STATUS_RUNNING)
        (alert,) = health["alerts"]
        assert alert["rule"] == "workers" and alert["severity"] == "critical"
        assert alert["data"]["live"] == 0 and alert["data"]["degraded"]
        # a finished run with a drained fleet is not an incident
        assert evaluate(state, run_status="completed")["alerts"] == []
        # re-admission heals the alert and clears the degraded flag
        state.feed(self._ev("worker_registered", worker="w0"))
        state.feed(self._ev("fleet_restored"))
        health = evaluate(state, run_status=STATUS_RUNNING)
        assert health["alerts"] == []
        assert not state.fleet_degraded

    def test_lease_retry_storm_warns_and_window_recovers(self):
        state = self._fleet_state(workers=1)
        for _ in range(6):
            state.feed(self._ev("lease_dispatch"))
        for _ in range(4):
            state.feed(self._ev("lease_retry"))
        (alert,) = evaluate(state)["alerts"]
        assert alert["rule"] == "workers" and alert["severity"] == "warn"
        assert alert["data"]["recent"] == 4
        # a long clean stretch pushes the storm out of the window
        for _ in range(40):
            state.feed(self._ev("lease_dispatch"))
        assert evaluate(state)["alerts"] == []
        assert state.lease_retries == 4  # totals are forever

    def test_progress_payload_and_frame(self):
        state = self._fleet_state(workers=3)
        state.feed(self._ev("worker_evicted", worker="w2"))
        for _ in range(5):
            state.feed(self._ev("lease_dispatch"))
        for _ in range(4):
            state.feed(self._ev("lease_complete"))
        state.feed(self._ev("lease_retry"))
        state.feed(self._ev("lease_quarantined"))
        health = evaluate(state)
        w = health["progress"]["workers"]
        assert w["registrations"] == 3 and w["evictions"] == 1
        assert w["live"] == 2 and w["seen"] == 3
        assert w["leases_dispatched"] == 5
        assert w["leases_completed"] == 4
        assert w["lease_retries"] == 1
        assert w["lease_quarantined"] == 1
        frame = render_watch_frame(state, health, title="fleet")
        assert "fleet" in frame and "2 live / 3 seen" in frame
        assert "leases 4/5" in frame and "1 retried" in frame
        state.feed(self._ev("fleet_degraded"))
        frame = render_watch_frame(state, evaluate(state), title="fleet")
        assert "DEGRADED" in frame


class TestLeaseLog:
    def test_run_record_leases_skips_garbage(self, tmp_path):
        run = os.path.join(str(tmp_path), "r1")
        os.makedirs(run)
        rows = [
            {"event": "dispatch", "lease": 1, "worker": "w0"},
            {"event": "complete", "lease": 1, "worker": "w0"},
        ]
        with open(os.path.join(run, LEASES_FILE), "w") as f:
            for row in rows:
                f.write(json.dumps(row) + "\n")
            f.write("\n{not json\n")
        rec = RunRecord(run)
        assert rec.leases == rows

    def test_run_record_without_lease_log(self, tmp_path):
        run = os.path.join(str(tmp_path), "r2")
        os.makedirs(run)
        assert RunRecord(run).leases == []
