"""Observability subsystem: tracer, metrics, timelines, renderers, CLI."""

import json
import math
import os

import pytest

from repro.cli import main
from repro.graph.builder import GraphBuilder
from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.render import span_coverage, timeline_report, trace_report
from repro.obs.timeline import best_so_far_curve, timeline_from_events
from repro.obs.trace import Trace, build_span_tree, load_trace
from repro.ops.gemm import gemm
from repro.pipeline import CompileOptions, compile_graph
from repro.tuning.baselines import tune_alt, tune_ansor_like
from repro.tuning.measurer import MeasureOptions


@pytest.fixture(scope="module")
def machine():
    return get_machine("intel_cpu")


@pytest.fixture(scope="module")
def gemm_op():
    return gemm(Tensor("a", (16, 16)), Tensor("b", (16, 16)), name="g")


def _no_disk_cache():
    return MeasureOptions(cache_dir=None)


# ---------------------------------------------------------------------------
# Spans
# ---------------------------------------------------------------------------

def test_span_nesting_and_timing_monotonicity():
    trace = Trace(name="t")
    with trace.span("outer") as outer:
        with trace.span("child_a") as a:
            pass
        with trace.span("child_b", submitted=3) as b:
            b.set(fresh=2)
    assert [r.name for r in trace.roots] == ["outer"]
    assert [c.name for c in outer.children] == ["child_a", "child_b"]
    # children nest strictly within the parent's window, in order
    assert outer.t_start <= a.t_start <= a.t_end <= b.t_start
    assert b.t_end <= outer.t_end
    for sp in (outer, a, b):
        assert sp.t_end >= sp.t_start >= 0.0
        assert sp.duration_s >= 0.0
    assert b.attrs == {"submitted": 3, "fresh": 2}
    # spans are recorded innermost-first (finish order)
    names = [e["name"] for e in trace.events if e["kind"] == "span"]
    assert names == ["child_a", "child_b", "outer"]


def test_span_records_error_attribute():
    trace = Trace(name="t")
    with pytest.raises(RuntimeError):
        with trace.span("boom"):
            raise RuntimeError("nope")
    rec = trace.events[-1]
    assert rec["attrs"]["error"] == "RuntimeError"
    assert rec["t_end"] is not None


def test_disabled_trace_records_nothing_but_still_times():
    trace = Trace(enabled=False, name="null")
    with trace.span("a") as sp:
        with trace.span("b"):
            pass
        trace.event("round", x=1)
    assert trace.events == []
    assert trace.roots == []
    assert sp.duration_s > 0.0  # wall-time accounting still works


# ---------------------------------------------------------------------------
# JSONL round-trip
# ---------------------------------------------------------------------------

def test_jsonl_round_trip(tmp_path):
    trace = Trace(name="rt")
    trace.metrics.counter("x.count").inc(3)
    with trace.span("compile", graph="g"):
        with trace.span("tuning"):
            trace.event("round", task="g", best_so_far=1e-6)
    path = str(tmp_path / "run.jsonl")
    trace.save(path)

    # every line is valid JSON with a known kind
    with open(path) as f:
        kinds = [json.loads(line)["kind"] for line in f]
    assert kinds[0] == "meta" and kinds[-1] == "metrics"

    data = load_trace(path)
    assert data.name == "rt"
    assert data.metrics["x.count"] == 3
    (root,) = data.roots
    assert root.name == "compile"
    assert root.attrs["graph"] == "g"
    assert [c.name for c in root.children] == ["tuning"]
    assert timeline_from_events(data.events) == [
        {"task": "g", "best_so_far": 1e-6}
    ]


def test_load_trace_skips_corrupt_lines(tmp_path):
    trace = Trace(name="rt")
    with trace.span("only"):
        pass
    path = str(tmp_path / "run.jsonl")
    trace.save(path)
    with open(path, "a") as f:
        f.write("{not json}\n\n")
    data = load_trace(path)
    assert [r.name for r in data.roots] == ["only"]


def test_meta_attribution_round_trip(tmp_path):
    trace = Trace(name="rt", meta={"seed": 5, "git_sha": "abc123",
                                   "repro_version": "0.1.0"})
    with trace.span("only"):
        pass
    path = str(tmp_path / "run.jsonl")
    trace.save(path)
    with open(path) as f:
        header = json.loads(f.readline())
    assert header["kind"] == "meta" and header["version"] == 1
    assert header["seed"] == 5 and header["git_sha"] == "abc123"
    data = load_trace(path)
    assert data.meta["seed"] == 5
    # meta must never clobber the reserved header fields
    shadow = Trace(name="real", meta={"name": "fake", "version": 99})
    assert json.loads(shadow.lines()[0])["name"] == "real"
    assert json.loads(shadow.lines()[0])["version"] == 1


def test_load_trace_skips_unknown_kinds_with_one_warning(tmp_path, caplog):
    trace = Trace(name="fw")
    with trace.span("only"):
        pass
    path = str(tmp_path / "run.jsonl")
    trace.save(path)
    with open(path, "a") as f:
        f.write(json.dumps({"kind": "hologram", "x": 1}) + "\n")
        f.write(json.dumps({"kind": "hologram", "x": 2}) + "\n")
        f.write(json.dumps({"no_kind": True}) + "\n")
    with caplog.at_level("WARNING", logger="repro"):
        data = load_trace(path)
    assert [r.name for r in data.roots] == ["only"]
    warnings = [r for r in caplog.records if "unknown kind" in r.getMessage()]
    assert len(warnings) == 1  # one summary line, not one per record
    assert "3 record(s)" in warnings[0].getMessage()
    assert "hologram" in warnings[0].getMessage()


# ---------------------------------------------------------------------------
# Live streaming sink
# ---------------------------------------------------------------------------

def test_stream_appends_records_as_they_happen(tmp_path):
    path = str(tmp_path / "live.jsonl")
    trace = Trace(name="s", stream_to=path)
    assert trace.stream_path == path

    def kinds():
        with open(path) as f:
            return [json.loads(line)["kind"] for line in f]

    assert kinds() == ["meta"]  # header lands at stream start
    trace.event("round", round=0)
    assert kinds() == ["meta", "event"]  # flushed per record, no save needed
    with trace.span("outer"):
        with trace.span("inner"):
            pass
        # spans stream on finish: inner is on disk, outer not yet
        assert kinds() == ["meta", "event", "span"]
    assert kinds() == ["meta", "event", "span", "span"]


def test_disabled_trace_never_streams(tmp_path):
    path = str(tmp_path / "null.jsonl")
    trace = Trace(enabled=False, name="null", stream_to=path)
    trace.event("round", round=0)
    with trace.span("a"):
        pass
    assert trace.stream_path is None
    assert not os.path.exists(path)


def test_stream_periodic_metrics_snapshots(tmp_path):
    path = str(tmp_path / "live.jsonl")
    trace = Trace(name="s", stream_to=path, stream_metrics_every=2)
    trace.metrics.counter("n").inc()
    for i in range(5):
        trace.event("round", round=i)
    with open(path) as f:
        kinds = [json.loads(line)["kind"] for line in f]
    # a tailing consumer sees counters move without waiting for the end
    assert kinds.count("metrics") == 2
    data = load_trace(path)
    assert data.metrics["n"] == 1  # last snapshot wins
    assert len(data.events) == 5


def test_stream_end_save_rewrites_canonical_form(tmp_path):
    path = str(tmp_path / "run.jsonl")
    trace = Trace(name="s", stream_to=path, stream_metrics_every=1)
    with trace.span("tune_task"):
        trace.event("round", round=0)
    trace.save(path)
    # the save closed the stream and replaced the interleaved live form
    assert trace.stream_path is None
    with open(path) as f:
        content = f.read()
    assert content == "\n".join(trace.lines()) + "\n"
    # ... which is byte-identical to what a never-streamed trace saves
    plain = Trace(name="s")
    with plain.span("tune_task"):
        plain.event("round", round=0)
    other = str(tmp_path / "plain.jsonl")
    plain.save(other)
    strip = [json.loads(line) for line in content.splitlines()]
    with open(other) as f:
        plain_records = [json.loads(line) for line in f]

    def scrub(records):
        return [
            {k: v for k, v in r.items()
             if k not in ("ts", "t_start", "t_end")}
            for r in records
        ]
    assert scrub(strip) == scrub(plain_records)


def test_stream_resume_appends_with_marker_and_heals_torn_line(tmp_path):
    path = str(tmp_path / "run.jsonl")
    first = Trace(name="s", stream_to=path)
    first.event("round", round=0)
    # the process dies mid-append: no close, a torn final line on disk
    with open(path, "a") as f:
        f.write('{"kind": "event", "na')
    resumed = Trace(name="s", stream_to=path, stream_append=True)
    resumed.event("round", round=1)
    with open(path) as f:
        lines = f.read().splitlines()
    headers = [json.loads(ln) for ln in lines
               if ln.startswith('{"kind": "meta"')]
    assert len(headers) == 2 and headers[-1]["resumed"] is True
    data = load_trace(path)  # torn line is terminated, not merged
    assert [e["attrs"]["round"] for e in data.events
            if e.get("name") == "round"] == [0, 1]


def test_listener_sees_records_and_own_emits_do_not_redispatch(tmp_path):
    path = str(tmp_path / "live.jsonl")
    trace = Trace(name="s", stream_to=path)
    seen = []

    def listener(record):
        seen.append((record["kind"], record.get("name")))
        if record.get("name") == "round":
            # a watchdog writing back into the trace it observes
            trace.event("health", status="ok")

    trace.add_listener(listener)
    trace.event("round", round=0)
    # the listener saw the round but not its own health event ...
    assert seen == [("event", "round")]
    # ... yet the health event was recorded and streamed
    assert [e["name"] for e in trace.events if e["kind"] == "event"] \
        == ["round", "health"]
    with open(path) as f:
        names = [json.loads(line).get("name") for line in f]
    assert names == ["s", "round", "health"]  # meta carries the trace name


def test_build_span_tree_orphans_become_roots():
    spans = [
        {"kind": "span", "id": 2, "parent": 99, "name": "orphan",
         "t_start": 0.0, "t_end": 1.0},
        {"kind": "span", "id": 1, "parent": None, "name": "root",
         "t_start": 0.0, "t_end": 2.0},
    ]
    roots = build_span_tree(spans)
    assert sorted(r.name for r in roots) == ["orphan", "root"]


# ---------------------------------------------------------------------------
# Metrics
# ---------------------------------------------------------------------------

def test_counter_and_gauge():
    c = Counter()
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ValueError):
        c.inc(-1)
    g = Gauge()
    g.set(2.5)
    g.add(0.5)
    assert g.value == 3.0


def test_histogram_bucket_edges():
    h = Histogram(edges=(1.0, 2.0, 4.0))
    for v in (0.5, 1.0):   # both land in the first bucket (v <= 1.0)
        h.observe(v)
    for v in (1.5, 2.0):   # (1.0, 2.0]
        h.observe(v)
    h.observe(3.0)          # (2.0, 4.0]
    h.observe(5.0)          # overflow
    h.observe(math.inf)     # nonfinite
    h.observe(math.nan)
    assert h.counts == [2, 2, 1]
    assert h.overflow == 1
    assert h.nonfinite == 2
    assert h.count == 8
    assert h.min == 0.5 and h.max == 5.0
    assert h.mean == pytest.approx((0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 5.0) / 6)
    d = h.as_dict()
    assert d["buckets"] == [[1.0, 2], [2.0, 2], [4.0, 1], ["inf", 1]]


def test_histogram_percentiles_interpolate():
    h = Histogram(edges=(10.0, 20.0, 30.0, 40.0))
    for v in range(1, 41):  # 1..40, ten per bucket
        h.observe(float(v))
    # exact at bucket edges, linear in between (min seeds the first bucket)
    assert h.percentile(0.0) == 1.0
    assert h.percentile(1.0) == 40.0
    assert h.percentile(0.5) == pytest.approx(20.0)
    assert h.percentile(0.75) == pytest.approx(30.0)
    assert h.percentile(0.95) == pytest.approx(38.0, abs=1.0)
    # quantiles are monotone and clamped into [min, max]
    qs = [h.percentile(q / 20) for q in range(21)]
    assert qs == sorted(qs)
    assert all(h.min <= v <= h.max for v in qs)


def test_histogram_percentiles_overflow_and_empty():
    h = Histogram(edges=(1.0,))
    assert h.percentile(0.5) is None  # no observations
    h.observe(math.inf)
    assert h.percentile(0.5) is None  # non-finite only
    h.observe(5.0)
    h.observe(9.0)  # both overflow; capped at max
    assert h.percentile(0.99) <= 9.0
    d = h.as_dict()
    assert d["p50"] is not None and d["p95"] <= 9.0
    with pytest.raises(ValueError):
        h.percentile(1.5)


def test_histogram_as_dict_carries_percentile_tails():
    h = Histogram(edges=(1.0, 2.0))
    for v in (0.5, 1.5, 1.8):
        h.observe(v)
    d = h.as_dict()
    assert set(d) >= {"p50", "p95", "p99"}
    assert d["p50"] <= d["p95"] <= d["p99"]
    json.dumps(d)


def test_histogram_rejects_bad_edges():
    with pytest.raises(ValueError):
        Histogram(edges=(2.0, 1.0))
    with pytest.raises(ValueError):
        Histogram(edges=(1.0, 1.0))


def test_registry_names_types_and_snapshot():
    reg = MetricsRegistry()
    reg.counter("a.count").inc(2)
    reg.gauge("a.gauge").set(1.5)
    reg.histogram("a.hist").observe(0.5)
    assert reg.counter("a.count") is reg.counter("a.count")
    with pytest.raises(ValueError):
        reg.gauge("a.count")  # same name, different kind
    assert reg.names() == ["a.count", "a.gauge", "a.hist"]
    assert reg.value("a.count") == 2
    assert reg.value("missing", 0) == 0
    snap = reg.snapshot()
    assert snap["a.count"] == 2 and snap["a.gauge"] == 1.5
    assert snap["a.hist"]["count"] == 1
    json.dumps(snap)  # snapshot must be JSON-serializable


def test_registry_merge():
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("n").inc(1)
    b.counter("n").inc(2)
    b.gauge("g").set(1.0)
    b.histogram("h").observe(0.5)
    a.merge(b)
    assert a.value("n") == 3
    assert a.value("g") == 1.0
    assert a.value("h")["count"] == 1


# ---------------------------------------------------------------------------
# Tuning integration: timeline, telemetry, determinism
# ---------------------------------------------------------------------------

def test_timeline_capture_two_round_tune(machine, gemm_op):
    trace = Trace(name="tl")
    result = tune_ansor_like(
        gemm_op, machine, budget=16, seed=0, measure=_no_disk_cache(),
        trace=trace,
    )
    rounds = result.timeline
    assert len(rounds) >= 2
    curve = best_so_far_curve(rounds)
    finite = [v for v in curve if math.isfinite(v)]
    assert finite, "no finite best-so-far values recorded"
    # best-so-far is monotone non-increasing and ends at the reported best
    assert all(b <= a for a, b in zip(finite, finite[1:]))
    assert finite[-1] == result.best_latency
    for i, r in enumerate(rounds):
        assert r["round"] == i
        assert r["stage"] in ("joint", "loop")
        assert r["task"] == gemm_op.name
    # the same rounds ride in the trace's JSONL events
    from_events = timeline_from_events(
        [e for e in trace.events if e.get("kind") == "event"]
    )
    assert [r["round"] for r in from_events] == [r["round"] for r in rounds]


def test_traced_and_untraced_results_identical(machine, gemm_op):
    traced = tune_alt(
        gemm_op, machine, budget=48, seed=3, measure=_no_disk_cache(),
        trace=Trace(name="t"),
    )
    plain = tune_alt(
        gemm_op, machine, budget=48, seed=3, measure=_no_disk_cache()
    )
    assert traced.best_latency == plain.best_latency
    assert {n: lay.signature() for n, lay in traced.best_layouts.items()} == \
        {n: lay.signature() for n, lay in plain.best_layouts.items()}
    assert traced.best_loop_config == plain.best_loop_config
    assert traced.history == plain.history


def test_measure_stats_view_and_wall_time(machine, gemm_op):
    trace = Trace(name="ms")
    result = tune_ansor_like(
        gemm_op, machine, budget=16, seed=0, measure=_no_disk_cache(),
        trace=trace,
    )
    t = result.telemetry
    assert t["fresh_evaluations"] > 0
    assert t["wall_time_s"] > 0.0
    assert 0.0 <= t["cache_hit_rate"] <= 1.0
    # wall time equals the sum of the task's measure_batch span durations
    batch_total = sum(
        e["t_end"] - e["t_start"]
        for e in trace.events
        if e.get("kind") == "span" and e.get("name") == "measure_batch"
    )
    assert t["wall_time_s"] == pytest.approx(batch_total, rel=1e-6)


# ---------------------------------------------------------------------------
# Pipeline integration: compile spans
# ---------------------------------------------------------------------------

def _tiny_graph():
    b = GraphBuilder("tiny")
    x = b.input((1, 4, 10, 10))
    x = b.conv_bn_act(x, 8, 3)
    x = b.global_avg_pool(x)
    return b.build()


def test_compile_graph_span_coverage(machine, tmp_path):
    trace = Trace(name="compile")
    compile_graph(
        _tiny_graph(), machine,
        CompileOptions(mode="ansor", total_budget=32, seed=0, trace=trace,
                       measure=_no_disk_cache()),
    )
    path = str(tmp_path / "compile.jsonl")
    trace.save(path)
    data = load_trace(path)
    (root,) = [r for r in data.roots if r.name == "compile"]
    stages = [c.name for c in root.children]
    assert stages == ["tuning", "propagation", "fusion", "lowering", "estimate"]
    assert span_coverage(root) >= 0.9
    assert root.attrs["graph"] == "tiny"
    assert "latency_s" in root.attrs


def test_compile_without_trace_records_nothing(machine):
    model = compile_graph(
        _tiny_graph(), machine,
        CompileOptions(mode="ansor", total_budget=32, seed=0,
                       measure=_no_disk_cache()),
    )
    assert model.latency_s > 0  # opts.trace defaults to None; no crash


# ---------------------------------------------------------------------------
# Renderers + CLI
# ---------------------------------------------------------------------------

def test_reports_render(machine, gemm_op):
    trace = Trace(name="r")
    tune_ansor_like(
        gemm_op, machine, budget=16, seed=0, measure=_no_disk_cache(),
        trace=trace,
    )
    report = trace_report(trace)
    assert "tune_task" in report and "measure_batch" in report
    assert "metrics:" in report
    tl = timeline_report(trace)
    assert gemm_op.name in tl and "best-so-far" in tl
    # filtering by an unknown task yields the empty-timeline message
    assert "(no rounds recorded)" in timeline_report(trace, task="nope")


def test_cli_trace_out_and_trace_subcommand(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    rc = main([
        "tune", "gmm", "--budget", "16", "--size", "16",
        "--no-measure-cache", "--trace-out", path,
    ])
    assert rc == 0
    capsys.readouterr()
    rc = main(["trace", path])
    assert rc == 0
    out = capsys.readouterr().out
    assert "trace 'tune:gmm':" in out
    assert "tuning timeline:" in out


def test_cli_trace_renders_attribution_header(tmp_path, capsys):
    path = str(tmp_path / "run.jsonl")
    rc = main([
        "tune", "gmm", "--budget", "16", "--size", "16", "--seed", "7",
        "--no-measure-cache", "--trace-out", path,
    ])
    assert rc == 0
    capsys.readouterr()
    assert main(["trace", path]) == 0
    out = capsys.readouterr().out
    assert "seed=7" in out
    assert "repro_version=" in out


def test_cli_trace_empty_file(tmp_path, capsys):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "(no spans recorded)" in out
    assert "(no rounds recorded)" in out


def test_cli_trace_truncated_last_line(tmp_path, capsys):
    trace = Trace(name="cut")
    with trace.span("tune_task"):
        trace.event("round", task="g", round=0, stage="loop",
                    best_so_far=1e-6)
    full = trace.lines()
    path = tmp_path / "cut.jsonl"
    # a killed run's partial final write: last line cut mid-JSON
    path.write_text("\n".join(full[:-1]) + "\n" + full[-1][: len(full[-1]) // 2])
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "trace 'cut':" in out
    assert "tune_task" in out


def test_cli_trace_metrics_only(tmp_path, capsys):
    # a trace that recorded metrics but no spans/events still renders
    lines = [
        json.dumps({"kind": "meta", "version": 1, "name": "m"}),
        json.dumps({"kind": "metrics", "snapshot": {"x.count": 4}}),
    ]
    path = tmp_path / "metrics.jsonl"
    path.write_text("\n".join(lines) + "\n")
    assert main(["trace", str(path)]) == 0
    out = capsys.readouterr().out
    assert "(no spans recorded)" in out
    assert "x.count" in out and "4" in out


def test_cli_verbosity_flags(capsys):
    assert main(["-q", "machines"]) == 0
    assert main(["-v", "models"]) == 0
    capsys.readouterr()
