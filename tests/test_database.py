"""The persistent tuning database and the record-layer durability fixes.

Covers the cross-run record store (`repro.tuning.database`): atomic dumps
with merge mode, corrupt-line recovery, the `__tuple__` sentinel escape,
strict `apply_record` matching, keep-best append-only persistence with
compaction, nearest-neighbor warm starts, the cache-first paths through
`pipeline.compile` and the network scheduler, and the `repro db` CLI.
Property-based sections fuzz the record round trip with adversarial task
signatures and random layout/schedule chains.
"""

import json
import logging
import math
import os

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cli import main as cli_main
from repro.graph.builder import GraphBuilder
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.ops.gemm import gemm
from repro.pipeline import CompileOptions, compile_graph, task_signature
from repro.tuning.baselines import tune_alt
from repro.tuning.cost_model import CostModel
from repro.tuning.database import (
    DEFAULT_MAX_DISTANCE,
    TuningDatabase,
    encode_warm,
    signature_distance,
    warm_start_payload,
)
from repro.tuning.records import (
    RecordError,
    RecordStore,
    TuneRecord,
    _jsonable,
    _tupled,
    apply_record,
    layout_to_dict,
    record_from_result,
    schedule_from_dict,
    schedule_to_dict,
)
from repro.tuning.scheduler import tune_network

MACHINE = get_machine("intel_cpu")


def small_gemm(n=16, name="g"):
    return gemm(
        Tensor(f"{name}.a", (n, n)), Tensor(f"{name}.b", (n, n)), name=name
    )


def small_conv(name="c", ch=8):
    return conv2d(
        Tensor(f"{name}.i", (1, ch, 12, 12)),
        Tensor(f"{name}.k", (ch, ch, 3, 3)),
        name=name,
    )


def synthetic_record(task=("t",), machine="m", latency=1e-6, **kw):
    return TuneRecord(
        task=task, machine=machine, latency_s=latency,
        layouts={}, schedule=None, **kw,
    )


def tuned_record(comp, budget=32, seed=0, warm=False):
    res = tune_alt(comp, MACHINE, budget=budget, seed=seed)
    return record_from_result(comp, MACHINE.name, res, warm=warm)


# ---------------------------------------------------------------------------
# satellite: atomic dump + merge mode
# ---------------------------------------------------------------------------

class TestAtomicDump:
    def test_replace_leaves_no_tmp(self, tmp_path):
        store = RecordStore()
        store.add(synthetic_record())
        path = tmp_path / "r.jsonl"
        store.dump(str(path))
        assert len(RecordStore.load(str(path))) == 1
        leftovers = [f for f in os.listdir(tmp_path) if ".tmp" in f]
        assert leftovers == []

    def test_replace_overwrites_whole_file(self, tmp_path):
        path = tmp_path / "r.jsonl"
        a = RecordStore()
        a.add(synthetic_record(task=("a",)))
        a.dump(str(path))
        b = RecordStore()
        b.add(synthetic_record(task=("b",)))
        b.dump(str(path), mode="replace")
        loaded = RecordStore.load(str(path))
        assert [r.task for r in loaded.records()] == [("b",)]

    def test_merge_mode_keeps_best_of_both(self, tmp_path):
        path = tmp_path / "r.jsonl"
        disk = RecordStore()
        disk.add(synthetic_record(task=("shared",), latency=1e-7))
        disk.add(synthetic_record(task=("disk-only",)))
        disk.dump(str(path))
        mine = RecordStore()
        mine.add(synthetic_record(task=("shared",), latency=5e-7))  # worse
        mine.add(synthetic_record(task=("mine-only",)))
        mine.dump(str(path), mode="merge")
        loaded = RecordStore.load(str(path))
        assert len(loaded) == 3
        by_task = {r.task: r for r in loaded.records()}
        assert by_task[("shared",)].latency_s == 1e-7  # disk's better survived

    def test_bad_mode_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            RecordStore().dump(str(tmp_path / "r.jsonl"), mode="append")


# ---------------------------------------------------------------------------
# satellite: corrupt-line recovery
# ---------------------------------------------------------------------------

class TestCorruptLines:
    def test_load_skips_bad_lines_with_one_warning(self, tmp_path, caplog):
        good = synthetic_record(task=("ok",))
        good2 = synthetic_record(task=("ok2",))
        path = tmp_path / "r.jsonl"
        path.write_text(
            good.to_json() + "\n"
            + '{"task": ["__tuple__", "torn...' + "\n"  # torn tail write
            + "complete garbage\n"
            + '["a", "json", "list"]' + "\n"  # valid JSON, not an object
            + '{"machine": "m"}' + "\n"  # object missing required fields
            + good2.to_json() + "\n"
        )
        with caplog.at_level(logging.WARNING, logger="repro"):
            loaded = RecordStore.load(str(path))
        assert {r.task for r in loaded.records()} == {("ok",), ("ok2",)}
        warnings = [r for r in caplog.records if "corrupt" in r.getMessage()]
        assert len(warnings) == 1
        assert "4" in warnings[0].getMessage()

    def test_malformed_records_raise_record_error(self):
        from repro.tuning.records import primitive_from_dict

        with pytest.raises(RecordError):
            primitive_from_dict({"op": "warp"})
        with pytest.raises(RecordError):
            TuneRecord.from_json('["not", "an", "object"]')
        with pytest.raises(RecordError):
            TuneRecord.from_json('{"task": ["__tuple__"]}')  # missing fields

    def test_torn_tail_after_append(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        db.add(synthetic_record(task=("a",)))
        db.add(synthetic_record(task=("b",)))
        with open(db.path, "a") as f:
            f.write('{"task": ["__tuple__", "c"], "machi')  # crashed appender
        again = TuningDatabase(db.path)
        assert len(again) == 2  # torn tail dropped, healthy lines intact


# ---------------------------------------------------------------------------
# satellite: "__tuple__" sentinel escape
# ---------------------------------------------------------------------------

class TestSentinelEscape:
    def test_literal_sentinel_string_survives(self):
        task = ("__tuple__", ("nested", "__tuple__"), "plain")
        rec = synthetic_record(task=task)
        assert TuneRecord.from_json(rec.to_json()).task == task

    def test_already_escaped_forms_survive(self):
        task = ("\\__tuple__", "\\\\__tuple__", "\\not_the_sentinel")
        rec = synthetic_record(task=task)
        assert TuneRecord.from_json(rec.to_json()).task == task

    def test_sentinel_never_creates_phantom_tuple(self):
        # a list whose first element is the literal string must not come
        # back as a tuple
        task = (["__tuple__", 1, 2],)
        back = TuneRecord.from_json(synthetic_record(task=task).to_json()).task
        assert back == task
        assert isinstance(back[0], list)

    @given(
        st.recursive(
            st.one_of(
                st.integers(-8, 8),
                st.sampled_from(
                    ["__tuple__", "\\__tuple__", "x", "", "\\", "__tuple"]
                ),
            ),
            lambda inner: st.one_of(
                st.lists(inner, max_size=3),
                st.lists(inner, max_size=3).map(tuple),
            ),
            max_leaves=12,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_jsonable_tupled_inverse(self, value):
        encoded = _jsonable(value)
        json.dumps(encoded)  # must be pure JSON
        assert _tupled(encoded) == value


# ---------------------------------------------------------------------------
# satellite: strict apply_record matching
# ---------------------------------------------------------------------------

class TestApplyRecordStrict:
    def test_unmatched_recorded_layout_raises(self):
        comp = small_gemm(8, "am")
        rec = tuned_record(comp, budget=24)
        rec.layouts["phantom"] = {
            "shape": [7, 7], "names": ["A", "B"], "primitives": [],
        }
        with pytest.raises(RecordError, match="phantom"):
            apply_record(rec, comp)

    def test_shared_shape_positional_matching(self):
        # gemm 8x8: output and both inputs share the (8, 8) shape; the
        # record's insertion order must map output-first deterministically
        comp = small_gemm(8, "ap")
        out_lay = Layout((8, 8)).split(0, [2, 4])
        a_lay = Layout((8, 8)).reorder([1, 0])
        b_lay = Layout((8, 8)).split(1, [4, 2])
        rec = TuneRecord(
            task=task_signature(comp),
            machine=MACHINE.name,
            latency_s=1e-6,
            layouts={
                comp.output.name: layout_to_dict(out_lay),
                comp.inputs[0].name: layout_to_dict(a_lay),
                comp.inputs[1].name: layout_to_dict(b_lay),
            },
            schedule=None,
        )
        for _ in range(3):  # deterministic across repeated applications
            layouts, _ = apply_record(rec, comp)
            assert layouts[comp.output.name].signature() == out_lay.signature()
            assert layouts[comp.inputs[0].name].signature() == a_lay.signature()
            assert layouts[comp.inputs[1].name].signature() == b_lay.signature()

    def test_clone_with_renamed_tensors_still_applies(self):
        rec = tuned_record(small_conv("c1"), budget=24)
        clone = small_conv("c2")
        layouts, _ = apply_record(rec, clone)
        assert set(layouts) <= {clone.output.name} | {
            t.name for t in clone.inputs
        }


# ---------------------------------------------------------------------------
# the database: persistence, keep-best appends, compaction, import/export
# ---------------------------------------------------------------------------

def _disk_lines(path):
    with open(path) as f:
        return sum(1 for line in f if line.strip())


class TestTuningDatabase:
    def test_reopen_round_trip(self, tmp_path):
        comp = small_gemm(8, "rr")
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        rec = tuned_record(comp, budget=24)
        assert db.add(rec)
        again = TuningDatabase(db.path)
        hit = again.lookup(comp, MACHINE.name)
        assert hit is not None
        assert hit.to_json() == rec.to_json()
        assert again.hits == 1 and again.misses == 0

    def test_directory_path_uses_db_file(self, tmp_path):
        db = TuningDatabase(str(tmp_path))
        assert db.path == str(tmp_path / "db.jsonl")
        db.add(synthetic_record())
        assert os.path.exists(db.path)

    def test_keep_best_append_only_on_improvement(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        assert db.add(synthetic_record(latency=4e-6))
        assert not db.add(synthetic_record(latency=9e-6))  # worse: dropped
        assert db.add(synthetic_record(latency=1e-6))
        assert _disk_lines(db.path) == 2  # the worse one never hit disk
        assert len(db) == 1
        assert db.puts == 2

    def test_compact_rewrites_keep_best_view(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        for lat in (4e-6, 3e-6, 2e-6):
            db.add(synthetic_record(latency=lat))
        assert _disk_lines(db.path) == 3
        out = db.compact()
        assert out == {"before": 3, "after": 1}
        assert _disk_lines(db.path) == 1
        assert TuningDatabase(db.path).records()[0].latency_s == 2e-6

    def test_compact_preserves_concurrent_appends(self, tmp_path):
        path = str(tmp_path / "db.jsonl")
        db1 = TuningDatabase(path)
        db1.add(synthetic_record(task=("one",), latency=2e-6))
        db2 = TuningDatabase(path)  # second process
        db2.add(synthetic_record(task=("two",)))
        db2.add(synthetic_record(task=("one",), latency=1e-6))  # better
        db1.compact()  # db1 has never seen db2's appends
        merged = TuningDatabase(path)
        assert len(merged) == 2
        by_task = {r.task: r for r in merged.records()}
        assert by_task[("one",)].latency_s == 1e-6

    def test_export_import(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "a.jsonl"))
        db.add(synthetic_record(task=("x",)))
        db.add(synthetic_record(task=("y",)))
        out = str(tmp_path / "export.jsonl")
        assert db.export(out) == 2
        other = TuningDatabase(str(tmp_path / "b.jsonl"))
        other.add(synthetic_record(task=("y",), latency=1e-9))  # better y
        assert other.import_file(out) == 1  # only x was new-best
        assert len(other) == 2
        # absorbed records are durable
        assert len(TuningDatabase(other.path)) == 2

    def test_stats_and_provenance(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        db.add(synthetic_record(task=("w",), warm={"ppo": {}}))
        db.add(synthetic_record(task=("p",), machine="m2"))
        db.lookup(small_gemm(8, "st"), MACHINE.name)  # a miss
        s = db.stats()
        assert s["records"] == 2
        assert s["machines"] == {"m": 1, "m2": 1}
        assert s["warm_capable"] == 1
        assert s["disk_lines"] == 2 and s["disk_bytes"] > 0
        p = db.provenance()
        assert p["misses"] == 1 and p["hits"] == 0 and p["puts"] == 2

    def test_autosync_off_keeps_disk_untouched(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"), autosync=False)
        db.add(synthetic_record())
        assert not os.path.exists(db.path) or _disk_lines(db.path) == 0
        db.dump(db.path, mode="merge")  # explicit sync still works
        assert _disk_lines(db.path) == 1


# ---------------------------------------------------------------------------
# signature distance + warm-start transfer
# ---------------------------------------------------------------------------

class TestSignatureDistance:
    def test_identical_is_zero(self):
        sig = task_signature(small_gemm(16, "d0"))
        assert signature_distance(sig, sig) == 0.0

    def test_different_op_family_is_inf(self):
        a = task_signature(small_gemm(16, "d1"))
        b = task_signature(small_conv("d2"))
        assert signature_distance(a, b) == math.inf

    def test_shape_drift_is_monotone_and_symmetric(self):
        s16 = task_signature(small_gemm(16, "e1"))
        s24 = task_signature(small_gemm(24, "e2"))
        s64 = task_signature(small_gemm(64, "e3"))
        near, far = signature_distance(s16, s24), signature_distance(s16, s64)
        assert 0 < near < far < math.inf
        assert signature_distance(s24, s16) == near

    def test_malformed_signature_is_inf(self):
        assert signature_distance(("bad",), task_signature(small_gemm())) \
            == math.inf


class TestWarmStart:
    def test_nearest_excludes_exact_and_ranks_by_distance(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        for n, name in ((16, "n16"), (24, "n24"), (32, "n32")):
            db.add(tuned_record(small_gemm(n, name), budget=24))
        query = small_gemm(16, "q")
        assert db.lookup(query, MACHINE.name) is not None  # exact exists
        ranked = db.nearest(query, MACHINE.name, k=2)
        assert len(ranked) == 2
        sizes = [rec.task[1][0] for _, rec in ranked]
        assert sizes == [24, 32]  # nearest first, exact match excluded
        assert ranked[0][0] < ranked[1][0]
        assert db.nearest(query, MACHINE.name, max_distance=0.01) == []

    def test_warm_start_payload_shape(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        db.add(tuned_record(small_gemm(16, "w16"), budget=48, warm=True))
        payload = db.warm_start(small_gemm(24, "w24"), MACHINE.name)
        assert payload is not None
        assert set(payload) >= {"pretrained", "cost_model_seed", "distance"}
        assert {"layout", "loop"} <= set(payload["pretrained"])
        assert db.warm_starts == 1

    def test_warm_start_skips_payloadless_neighbors(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        db.add(tuned_record(small_gemm(16, "np16"), budget=24, warm=False))
        assert db.warm_start(small_gemm(24, "np24"), MACHINE.name) is None

    def test_warm_payload_round_trips_into_tuner(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        db.add(tuned_record(small_gemm(16, "t16"), budget=48, warm=True))
        warm = TuningDatabase(db.path).warm_start(
            small_gemm(24, "t24"), MACHINE.name
        )
        res = tune_alt(
            small_gemm(24, "t24b"), MACHINE, budget=24, seed=0,
            pretrained=warm["pretrained"],
            cost_model_seed=warm["cost_model_seed"],
        )
        assert math.isfinite(res.best_latency)

    def test_encode_warm_rounds_and_jsonifies(self):
        warm = {
            "ppo": {
                "layout": {
                    "actor": [np.array([[0.123456789, 1.0]])],
                    "critic": [np.array([0.5])],
                    "log_std": -0.987654321,
                }
            },
            "cost_model": {"X": [np.arange(3.0)], "y": [1.23456789]},
        }
        enc = encode_warm(warm)
        json.dumps(enc)  # JSON-ready, no numpy left
        assert enc["ppo"]["layout"]["actor"][0][0][0] == pytest.approx(
            0.123457
        )
        assert encode_warm(None) is None and encode_warm({}) is None

    def test_warm_start_payload_none_without_state(self):
        assert warm_start_payload(synthetic_record()) is None

    def test_cost_model_seed_round_trip(self):
        src = CostModel(min_samples=4)
        rng = np.random.default_rng(0)
        for _ in range(8):
            src._X.append(rng.normal(size=5))
            src._y.append(float(rng.normal()))
        seed = src.export_seed()
        json.dumps(seed)
        dst = CostModel(min_samples=4)
        assert dst.seed(seed) == 8
        assert dst._model is not None  # enough points: fitted immediately


# ---------------------------------------------------------------------------
# cache-first compile + network scheduler integration
# ---------------------------------------------------------------------------

def _one_conv_net():
    b = GraphBuilder("db_net")
    x = b.input((1, 8, 14, 14))
    x = b.conv_bn_act(x, 8, 3)
    return b.build()


class TestPipelineWithDatabase:
    def test_second_compile_is_all_hits(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        opts = CompileOptions(mode="alt", total_budget=64, seed=0, records=db)
        first = compile_graph(_one_conv_net(), MACHINE, opts)
        assert db.puts >= 1
        reopened = TuningDatabase(db.path)  # fresh process
        opts2 = CompileOptions(
            mode="alt", total_budget=64, seed=0, records=reopened
        )
        second = compile_graph(_one_conv_net(), MACHINE, opts2)
        assert all(r.measurements == 0 for r in second.task_results.values())
        assert reopened.hits >= 1 and reopened.puts == 0
        assert second.latency_s == pytest.approx(first.latency_s, rel=0.2)

    def test_plain_record_store_still_works(self):
        store = RecordStore()
        opts = CompileOptions(
            mode="alt", total_budget=64, seed=0, records=store
        )
        compile_graph(_one_conv_net(), MACHINE, opts)
        assert len(store) >= 1


class TestSchedulerWithDatabase:
    def test_network_tune_hits_skip_measurement(self, tmp_path):
        db = TuningDatabase(str(tmp_path / "db.jsonl"))
        cold = tune_network(
            _one_conv_net, MACHINE, budget=64, seed=0, database=db
        )
        assert db.puts >= 1
        reopened = TuningDatabase(db.path)
        warm = tune_network(
            _one_conv_net, MACHINE, budget=64, seed=0, database=reopened
        )
        assert reopened.hits == len(warm.tasks)
        assert sum(t.measurements for t in warm.tasks.values()) == 0
        assert all(r.granted == 0 for r in warm.reports)
        assert warm.network_latency_s == pytest.approx(
            cold.network_latency_s, rel=0.2
        )

    def test_database_none_unchanged(self):
        res = tune_network(_one_conv_net, MACHINE, budget=64, seed=0)
        assert math.isfinite(res.network_latency_s)


# ---------------------------------------------------------------------------
# CLI: --db on tune, and the `repro db` maintenance commands
# ---------------------------------------------------------------------------

class TestCLIDatabase:
    def test_tune_miss_then_hit(self, tmp_path, capsys):
        db_path = str(tmp_path / "db.jsonl")
        base = [
            "-q", "tune", "gmm", "--size", "8", "--budget", "32",
            "--seed", "0", "--db", db_path,
        ]
        assert cli_main(base) == 0
        out1 = capsys.readouterr().out
        assert "miss; result deposited" in out1
        assert cli_main(base) == 0
        out2 = capsys.readouterr().out
        assert "HIT" in out2
        assert "0 simulated measurements" in out2

        # identical emitted layouts/schedule
        def emitted(out):
            return [
                line for line in out.splitlines()
                if "Layout[" in line or "schedule:" in line
            ]

        assert emitted(out1) == emitted(out2) and emitted(out1)

    def test_db_flag_rejected_for_baseline_tuners(self, tmp_path):
        with pytest.raises(SystemExit):
            cli_main([
                "-q", "tune", "gmm", "--size", "8", "--tuner", "ansor",
                "--db", str(tmp_path / "db.jsonl"),
            ])

    def test_stats_compact_export_import(self, tmp_path, capsys):
        db_path = str(tmp_path / "db.jsonl")
        db = TuningDatabase(db_path)
        for lat in (4e-6, 2e-6):
            db.add(synthetic_record(latency=lat))
        assert cli_main(["-q", "db", "stats", db_path]) == 0
        out = capsys.readouterr().out
        assert "records: 1" in out and "repro db compact" in out
        assert cli_main(["-q", "db", "compact", db_path]) == 0
        assert "2 line(s) -> 1 record(s)" in capsys.readouterr().out
        exported = str(tmp_path / "out.jsonl")
        assert cli_main(["-q", "db", "export", db_path, "--out", exported]) == 0
        capsys.readouterr()
        dest = str(tmp_path / "dest.jsonl")
        assert cli_main(["-q", "db", "import", dest, exported]) == 0
        assert "imported 1 new-best record(s)" in capsys.readouterr().out

    def test_manifest_records_database_provenance(self, tmp_path, capsys):
        db_path = str(tmp_path / "db.jsonl")
        store = str(tmp_path / "runs")
        argv = [
            "-q", "tune", "gmm", "--size", "8", "--budget", "32",
            "--seed", "0", "--db", db_path, "--run-store", store,
        ]
        assert cli_main(argv) == 0
        capsys.readouterr()
        from repro.obs.runstore import RunStore

        rec = RunStore(store).latest()
        block = rec.manifest["database"]
        assert block["path"] == os.path.abspath(db_path)
        assert block["misses"] == 1 and block["puts"] == 1
        assert rec.summary()["database"] == block
        # and `runs show` surfaces it
        assert cli_main(["-q", "runs", "show", "latest", "--store", store]) == 0
        assert "database:" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# property-based: random record round trips
# ---------------------------------------------------------------------------

@st.composite
def random_layout_dicts(draw):
    """A random legal layout as its serialized dict form."""
    ndim = draw(st.integers(2, 3))
    shape = tuple(draw(st.sampled_from([2, 4, 6, 8])) for _ in range(ndim))
    lay = Layout(shape)
    for _ in range(draw(st.integers(0, 2))):
        dims = lay.dims
        i = draw(st.integers(0, len(dims) - 1))
        size = dims[i].size
        factors = [f for f in (2, 3, 4) if size % f == 0 and size // f > 1]
        if factors:
            f = draw(st.sampled_from(factors))
            lay = lay.split(i, [size // f, f])
    if draw(st.booleans()):
        perm = draw(st.permutations(range(len(lay.dims))))
        lay = lay.reorder(list(perm))
    return layout_to_dict(lay)


@st.composite
def random_schedules(draw):
    sched = LoopSchedule()
    for var in draw(st.lists(st.sampled_from(["s0", "s1", "s2"]),
                             unique=True, max_size=2)):
        sched.split(var, draw(st.sampled_from([[2, 2], [4, 2], [2, 3]])))
    if draw(st.booleans()):
        sched.parallel("s0")
    if draw(st.booleans()):
        sched.vectorize("s3")
    for var in draw(st.lists(st.sampled_from(["k", "s2.1"]),
                             unique=True, max_size=2)):
        sched.unroll(var)
    return sched


task_atoms = st.one_of(
    st.integers(1, 512),
    st.sampled_from(["conv", "gemm", "__tuple__", "\\__tuple__", "", "x y"]),
)
task_signatures = st.tuples(
    st.lists(task_atoms, max_size=2).map(tuple),  # tags
    st.lists(st.integers(1, 64), min_size=1, max_size=4).map(tuple),  # out
    st.lists(
        st.lists(st.integers(1, 64), min_size=1, max_size=4).map(tuple),
        max_size=2,
    ).map(tuple),  # inputs
    st.lists(st.tuples(task_atoms, task_atoms), max_size=2).map(tuple),
)


class TestRecordRoundTripProperties:
    @given(
        task=task_signatures,
        latency=st.floats(1e-9, 1.0, allow_nan=False),
        measurements=st.integers(0, 10_000),
        layouts=st.dictionaries(
            st.sampled_from(["out", "a", "b"]), random_layout_dicts(),
            max_size=3,
        ),
        schedule=random_schedules(),
    )
    @settings(
        max_examples=40, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_record_json_round_trip(
        self, task, latency, measurements, layouts, schedule
    ):
        rec = TuneRecord(
            task=task,
            machine="m",
            latency_s=latency,
            layouts=layouts,
            schedule=schedule_to_dict(schedule),
            measurements=measurements,
        )
        back = TuneRecord.from_json(rec.to_json())
        assert back.task == task
        assert back.key() == rec.key()
        assert back.latency_s == latency
        assert back.measurements == measurements
        assert back.layouts == json.loads(json.dumps(layouts))
        restored = schedule_from_dict(back.schedule)
        assert restored.signature() == schedule.signature()

    @given(
        records=st.lists(
            st.tuples(task_signatures, st.floats(1e-9, 1.0, allow_nan=False)),
            min_size=1, max_size=8,
        )
    )
    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_database_reload_equals_memory_view(self, tmp_path_factory, records):
        tmp = tmp_path_factory.mktemp("prop-db")
        db = TuningDatabase(str(tmp / "db.jsonl"))
        for task, latency in records:
            db.add(synthetic_record(task=task, latency=latency))
        again = TuningDatabase(db.path)
        assert len(again) == len(db)
        mine = {r.key(): r.latency_s for r in db.records()}
        theirs = {r.key(): r.latency_s for r in again.records()}
        assert mine == theirs
