"""Layout primitives: shapes, access rewrites, materialization (Table 1, Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import Var
from repro.layout.layout import Layout
from repro.layout.primitives import (
    Dim,
    Fuse,
    LayoutError,
    Pad,
    Reorder,
    RewriteContext,
    Split,
    StoreAt,
    Unfold,
)


def roundtrip_check(lay: Layout, rng=None):
    """Materialize/unmaterialize round trip plus access-expression agreement."""
    rng = rng or np.random.default_rng(0)
    arr = rng.standard_normal(lay.logical_shape)
    phys = lay.materialize(arr)
    assert phys.shape == lay.physical_shape()
    back = lay.unmaterialize(phys)
    assert np.array_equal(back, arr)
    # forward accesses agree with materialized data (sample positions)
    names = [f"i{k}" for k in range(len(lay.logical_shape))]
    exprs = lay.rewrite_access([Var(n) for n in names])
    idx_rng = np.random.default_rng(1)
    for _ in range(50):
        logical = tuple(int(idx_rng.integers(0, s)) for s in lay.logical_shape)
        env = dict(zip(names, logical))
        physical = tuple(e.evaluate(env) for e in exprs)
        assert phys[physical] == arr[logical]
    # inverse accesses agree too
    pnames = [f"p{k}" for k in range(lay.ndim)]
    inv = lay.inverse_access([Var(n) for n in pnames])
    for _ in range(50):
        physical = tuple(int(idx_rng.integers(0, s)) for s in lay.physical_shape())
        env = dict(zip(pnames, physical))
        logical = tuple(e.evaluate(env) for e in inv)
        assert phys[physical] == arr[logical]


class TestSplit:
    def test_shape(self):
        lay = Layout((2, 12), ["A", "B"]).split("B", [3, 4])
        assert lay.physical_shape() == (2, 3, 4)
        assert lay.dim_names() == ("A", "B.0", "B.1")

    def test_inexact_split_rejected(self):
        with pytest.raises(LayoutError, match="not exact"):
            Layout((2, 12)).split(1, [5, 2])

    def test_single_factor_rejected(self):
        with pytest.raises(LayoutError):
            Split(0, [12])

    def test_three_way(self):
        lay = Layout((24,), ["X"]).split("X", [2, 3, 4])
        assert lay.physical_shape() == (2, 3, 4)
        roundtrip_check(lay)

    def test_roundtrip(self):
        roundtrip_check(Layout((6, 8), ["A", "B"]).split("B", [2, 4]))


class TestReorder:
    def test_shape(self):
        lay = Layout((2, 3, 4), ["A", "B", "C"]).reorder(["C", "A", "B"])
        assert lay.physical_shape() == (4, 2, 3)

    def test_bad_perm(self):
        with pytest.raises(LayoutError):
            Reorder([0, 0, 1])

    def test_roundtrip(self):
        roundtrip_check(Layout((2, 3, 4)).reorder([2, 0, 1]))


class TestFuse:
    def test_shape(self):
        lay = Layout((2, 3, 4), ["A", "B", "C"]).fuse(["B", "C"])
        assert lay.physical_shape() == (2, 12)

    def test_non_consecutive_rejected(self):
        with pytest.raises(LayoutError, match="consecutive"):
            Layout((2, 3, 4)).fuse([0, 2])

    def test_roundtrip(self):
        roundtrip_check(Layout((2, 3, 4)).fuse([0, 1]))

    def test_paper_packing_example(self):
        """NHWO -> fuse(H,W,O) -> split -> reorder (Section 4.1.1)."""
        N, H, W, O = 2, 4, 6, 8
        lay = (
            Layout((N, H, W, O), ["N", "H", "W", "O"])
            .fuse(["H", "W", "O"])
            .split(1, [O // 4, 4, H * W])
            .reorder([0, 1, 3, 2])
        )
        assert lay.physical_shape() == (N, O // 4, H * W, 4)
        roundtrip_check(lay)


class TestUnfold:
    def test_shape_overlapped(self):
        lay = Layout((10,), ["H"]).unfold("H", 6, 4)
        assert lay.physical_shape() == (2, 6)

    def test_shape_non_divisible(self):
        # D=11, B=6, S=4 -> ceil((11-6)/4)+1 = 3 tiles
        lay = Layout((11,), ["H"]).unfold("H", 6, 4)
        assert lay.physical_shape() == (3, 6)

    def test_tile_too_large(self):
        with pytest.raises(LayoutError):
            Layout((4,), ["H"]).unfold("H", 6, 4).physical_shape()

    def test_materialize_duplicates_overlap(self):
        lay = Layout((5,), ["H"]).unfold("H", 3, 2)
        arr = np.arange(5.0)
        phys = lay.materialize(arr)
        assert phys.tolist() == [[0, 1, 2], [2, 3, 4]]
        assert np.array_equal(lay.unmaterialize(phys), arr)

    def test_access_rewrite_eq1(self):
        """The sliding-window rewrite of Eq. 1 for stride-1 convolution."""
        H, KH, ht = 10, 3, 4
        lay = Layout((H,), ["H"]).unfold("H", ht + KH - 1, ht)
        ctx = RewriteContext({"oh": H - KH + 1, "rh": KH}, {"rh"})
        t, b = lay.rewrite_access([Var("oh") + Var("rh")], ctx)
        arr = np.arange(float(H))
        phys = lay.materialize(arr)
        for oh in range(H - KH + 1):
            for rh in range(KH):
                env = {"oh": oh, "rh": rh}
                assert phys[t.evaluate(env), b.evaluate(env)] == arr[oh + rh]

    def test_access_rewrite_strided_dilated(self):
        V, dil, KH, ht, OH = 2, 2, 3, 2, 4
        window = (KH - 1) * dil + 1
        Hin = V * (OH - 1) + window
        lay = Layout((Hin,), ["H"]).unfold("H", V * (ht - 1) + window, V * ht)
        ctx = RewriteContext({"oh": OH, "rh": KH}, {"rh"})
        t, b = lay.rewrite_access([Var("oh") * V + Var("rh") * dil], ctx)
        arr = np.arange(float(Hin))
        phys = lay.materialize(arr)
        for oh in range(OH):
            for rh in range(KH):
                env = {"oh": oh, "rh": rh}
                assert phys[t.evaluate(env), b.evaluate(env)] == arr[oh * V + rh * dil]

    def test_rewrite_requires_context(self):
        lay = Layout((10,), ["H"]).unfold("H", 6, 4)
        with pytest.raises(LayoutError, match="RewriteContext"):
            lay.rewrite_access([Var("x")])

    def test_rewrite_rejects_non_affine(self):
        lay = Layout((10,), ["H"]).unfold("H", 6, 4)
        ctx = RewriteContext({"x": 10}, set())
        with pytest.raises(LayoutError, match="affine"):
            lay.rewrite_access([Var("x") % 3], ctx)

    def test_rewrite_rejects_incompatible_stride(self):
        lay = Layout((10,), ["H"]).unfold("H", 6, 3)  # S != V*w
        ctx = RewriteContext({"oh": 8, "rh": 3}, {"rh"})
        with pytest.raises(LayoutError, match="incompatible"):
            lay.rewrite_access([Var("oh") + Var("rh")], ctx)

    def test_nontrivial_detection(self):
        assert Unfold(0, 6, 4).is_nontrivial()       # overlapped
        assert not Unfold(0, 4, 4).is_nontrivial()   # disjoint tiles

    @given(st.integers(1, 6), st.integers(1, 6), st.integers(5, 30))
    @settings(max_examples=40)
    def test_unmaterialize_inverts(self, b_extra, s, d):
        b = s + b_extra  # overlapping tiles
        if b > d:
            return
        lay = Layout((d,), ["H"]).unfold("H", b, s)
        arr = np.random.default_rng(0).standard_normal(d)
        assert np.allclose(lay.unmaterialize(lay.materialize(arr)), arr)


class TestPad:
    def test_shape_and_access(self):
        lay = Layout((4, 5), ["A", "B"]).pad("B", before=1, after=2)
        assert lay.physical_shape() == (4, 8)
        exprs = lay.rewrite_access([Var("a"), Var("b")])
        assert exprs[1].evaluate({"a": 0, "b": 3}) == 4

    def test_materialize_zeros(self):
        lay = Layout((3,), ["A"]).pad("A", after=2)
        phys = lay.materialize(np.ones(3))
        assert phys.tolist() == [1, 1, 1, 0, 0]
        assert lay.unmaterialize(phys).tolist() == [1, 1, 1]

    def test_no_padding_rejected(self):
        with pytest.raises(LayoutError):
            Pad(0, 0, 0)

    def test_expansion_ratio(self):
        lay = Layout((10,)).pad(0, after=6)
        assert lay.expansion_ratio() == pytest.approx(1.6)


class TestStoreAt:
    def test_binding_recorded(self):
        lay = Layout((8,), ["B"]).store_at("W", 0)
        binding = lay.store_at_binding()
        assert binding is not None
        assert binding.host == "W" and binding.host_dim == 0
        assert lay.has_nontrivial_advanced()

    def test_shape_unchanged(self):
        lay = Layout((8,)).store_at("W", 0)
        assert lay.physical_shape() == (8,)


class TestLayoutChains:
    def test_signature_distinguishes(self):
        a = Layout((4, 6)).split(1, [2, 3])
        b = Layout((4, 6)).split(1, [3, 2])
        assert a.signature() != b.signature()

    def test_replay_onto(self):
        src = Layout((4, 6), ["A", "B"]).split("B", [2, 3]).reorder([1, 0, 2])
        dst = src.replay_onto(Layout((4, 6)))
        assert dst.physical_shape() == src.physical_shape()
        assert dst.signature() == src.signature()

    def test_replay_shape_mismatch(self):
        src = Layout((4, 6)).split(1, [2, 3])
        with pytest.raises(LayoutError):
            src.replay_onto(Layout((4, 7)))

    def test_immutability(self):
        base = Layout((4, 6))
        derived = base.split(1, [2, 3])
        assert base.physical_shape() == (4, 6)
        assert derived.physical_shape() == (4, 2, 3)

    def test_index_of_by_name_and_int(self):
        lay = Layout((4, 6), ["A", "B"])
        assert lay.index_of("B") == 1
        assert lay.index_of(-1) == 1
        with pytest.raises(LayoutError):
            lay.index_of("Z")

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_random_basic_chains_roundtrip(self, data):
        """Any chain of basic primitives is a bijection on the data."""
        shape = data.draw(
            st.lists(st.sampled_from([2, 3, 4, 6]), min_size=2, max_size=4)
        )
        lay = Layout(shape)
        for _ in range(data.draw(st.integers(1, 4))):
            choice = data.draw(st.sampled_from(["split", "reorder", "fuse"]))
            dims = lay.dims
            if choice == "split":
                cands = [i for i, d in enumerate(dims) if d.size >= 4 and d.size % 2 == 0]
                if not cands:
                    continue
                i = data.draw(st.sampled_from(cands))
                lay = lay.split(i, [dims[i].size // 2, 2])
            elif choice == "reorder":
                perm = data.draw(st.permutations(range(len(dims))))
                lay = lay.reorder(list(perm))
            else:
                if len(dims) < 2:
                    continue
                i = data.draw(st.integers(0, len(dims) - 2))
                lay = lay.fuse([i, i + 1])
        roundtrip_check(lay)
