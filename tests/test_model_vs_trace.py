"""Cross-validation: the analytical latency model against the trace-driven
cache simulator.

The analytical model is the tuner's oracle; the trace simulator replays
real address streams.  They will not agree in absolute terms (the model
approximates footprints), but on *directional* questions -- which of two
programs touches memory worse -- they must usually agree, or tuning
conclusions would not transfer to the profiled tables.
"""

import numpy as np
import pytest

from repro.ir.compute import Access, Axis, ComputeDef
from repro.ir.expr import Var
from repro.ir.nest import Program
from repro.ir.tensor import Tensor
from repro.layout.layout import Layout
from repro.loops.schedule import LoopSchedule
from repro.lower.lower import lower_compute
from repro.machine.latency import estimate_stage
from repro.machine.spec import get_machine
from repro.machine.trace import profile_stage

MACHINE = get_machine("arm_cpu")


def copy_kernel(rows, cols, transposed=False):
    src = Tensor(f"S{rows}x{cols}{transposed}", (rows, cols))
    i, j = Var("i"), Var("j")
    if transposed:
        out = Tensor(f"O{rows}x{cols}t", (cols, rows))
        return ComputeDef(
            "copyT", out, [Axis("j", cols), Axis("i", rows)], [],
            Access(src, [i, j]),
        )
    out = Tensor(f"O{rows}x{cols}", (rows, cols))
    return ComputeDef(
        "copy", out, [Axis("i", rows), Axis("j", cols)], [],
        Access(src, [i, j]),
    )


class TestDirectionalAgreement:
    def test_row_vs_column_walk(self):
        """Both oracles prefer the row-major walk of a big matrix."""
        good = lower_compute(copy_kernel(2048, 16))
        bad = lower_compute(copy_kernel(2048, 16, transposed=True))
        model_good = estimate_stage(good, MACHINE).memory_cycles
        model_bad = estimate_stage(bad, MACHINE).memory_cycles
        trace_good = profile_stage(good, MACHINE).l1_misses
        trace_bad = profile_stage(bad, MACHINE).l1_misses
        assert model_good < model_bad
        assert trace_good < trace_bad

    def test_tiled_conv_beats_naive_in_both(self):
        inp = Tensor("I", (1, 16, 20, 20))
        ker = Tensor("K", (16, 16, 3, 3))
        comp = lambda: None
        from repro.ops.conv import conv2d

        op = conv2d(inp, ker, name="c")
        naive = lower_compute(op)
        sched = (
            LoopSchedule()
            .split("s2", [6, 3]).split("s3", [6, 3]).split("ri", [4, 4])
            .reorder(["s0", "s1", "s2.0", "s3.0", "ri.0", "rh", "rw",
                      "ri.1", "s2.1", "s3.1"])
        )
        tiled = lower_compute(op, {}, sched)
        m_naive = estimate_stage(naive, MACHINE)
        m_tiled = estimate_stage(tiled, MACHINE)
        t_naive = profile_stage(naive, MACHINE)
        t_tiled = profile_stage(tiled, MACHINE)
        model_ratio = m_tiled.memory_cycles / max(m_naive.memory_cycles, 1.0)
        trace_ratio = t_tiled.level_stats["L1"].misses / max(
            t_naive.level_stats["L1"].misses, 1
        )
        # directional agreement is only required when the difference is
        # decisive in both oracles; near-ties may break either way
        if (model_ratio < 0.8 or model_ratio > 1.25) and (
            trace_ratio < 0.8 or trace_ratio > 1.25
        ):
            assert (model_ratio < 1) == (trace_ratio < 1), (
                model_ratio, trace_ratio
            )

    def test_trace_misses_bounded_by_accesses(self):
        op = lower_compute(copy_kernel(256, 16))
        prof = profile_stage(op, MACHINE)
        l1 = prof.level_stats["L1"]
        assert 0 < l1.misses <= l1.accesses
        assert prof.dram_accesses <= l1.misses

    def test_cold_footprint_lower_bound(self):
        """The trace must miss at least once per distinct line touched."""
        op = lower_compute(copy_kernel(128, 16))
        prof = profile_stage(op, MACHINE)
        distinct_lines = (128 * 16 * 4 * 2) // 64  # src + dst bytes / line
        assert prof.level_stats["L1"].lines_fetched >= distinct_lines // 4
