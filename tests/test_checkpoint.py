"""Checkpoint/resume: atomic snapshots and the recovery invariant.

The invariant under test (see ``repro.tuning.checkpoint``): recovery never
changes results.  Checkpointing on vs. off is bit-identical, and a run
killed at an arbitrary snapshot boundary and resumed from disk reproduces
the uninterrupted run's ``TuneResult`` exactly.
"""

import json
import os
import pickle

import pytest

from repro.cli import _single_op, main as cli_main
from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.obs.runstore import (
    STATUS_COMPLETED,
    STATUS_RUNNING,
    RunRecord,
    RunStore,
)
from repro.ops.conv import conv2d
from repro.tuning.baselines import tune_alt
from repro.tuning.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)
from repro.tuning.measurer import MeasureOptions

MACHINE = get_machine("intel_cpu")


def small_conv():
    inp = Tensor("I", (1, 8, 12, 12))
    ker = Tensor("K", (8, 8, 3, 3))
    return conv2d(inp, ker, name="c")


def mo():
    return MeasureOptions(jobs=1, cache_dir=None)


def fingerprint(result):
    """Everything observable about a TuneResult except wall-clock noise."""
    telemetry = dict(result.telemetry or {})
    telemetry.pop("wall_time_s", None)
    return (
        result.best_latency,
        result.measurements,
        tuple(result.history),
        result.best_layout_config,
        result.best_loop_config,
        tuple(sorted(telemetry.items())),
        tuple(
            (d["round"], d["stage"], d["best_so_far"], d["measurements"])
            for d in result.timeline
        ),
    )


class Killer(Exception):
    """Stands in for SIGKILL right after a snapshot hits disk."""


class KillingManager(CheckpointManager):
    def __init__(self, path, every=1, die_after=3):
        super().__init__(path, every)
        self.die_after = die_after

    def save(self, payload):
        super().save(payload)
        if self.saves >= self.die_after:
            raise Killer()


# ---------------------------------------------------------------------------
# Snapshot file + manager mechanics
# ---------------------------------------------------------------------------

class TestCheckpointFile:
    def test_round_trip_and_no_tmp_left_behind(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        save_checkpoint(path, {"rng": (1, 2, 3)})
        back = load_checkpoint(path)
        assert back["rng"] == (1, 2, 3)
        assert back["version"] == CHECKPOINT_VERSION
        assert not os.path.exists(path + ".tmp")

    def test_missing_and_corrupt_raise(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(str(tmp_path / "nope.pkl"))
        bad = tmp_path / "torn.pkl"
        bad.write_bytes(b"\x80\x05 torn mid-write")
        with pytest.raises(CheckpointError):
            load_checkpoint(str(bad))

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.pkl"
        path.write_bytes(pickle.dumps({"version": CHECKPOINT_VERSION + 1}))
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))
        path.write_bytes(pickle.dumps([1, 2]))  # not even a dict
        with pytest.raises(CheckpointError):
            load_checkpoint(str(path))


class TestCheckpointManager:
    def test_cadence_counts_units_not_time(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ck.pkl"), every=3)
        calls = []

        def payload():
            calls.append(1)
            return {"n": len(calls)}

        hits = [manager.tick(payload) for _ in range(7)]
        assert hits == [False, False, True, False, False, True, False]
        assert manager.saves == 2
        assert len(calls) == 2  # payload built only when persisted
        assert load_checkpoint(manager.path)["n"] == 2

    def test_invalid_cadence_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointManager(str(tmp_path / "ck.pkl"), every=0)

    def test_save_failure_never_raises(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ck.pkl"))
        manager.save({"oops": lambda: None})  # unpicklable
        assert manager.saves == 0
        assert manager.load() is None  # nothing (and nothing torn) on disk


# ---------------------------------------------------------------------------
# The recovery invariant
# ---------------------------------------------------------------------------

@pytest.mark.slow
class TestRecoveryInvariant:
    BUDGET = 96

    def _base(self):
        return tune_alt(
            small_conv(), MACHINE, budget=self.BUDGET, seed=0, measure=mo()
        )

    def test_checkpointing_changes_nothing(self, tmp_path):
        manager = CheckpointManager(str(tmp_path / "ck.pkl"), every=1)
        with_ck = tune_alt(
            small_conv(), MACHINE, budget=self.BUDGET, seed=0, measure=mo(),
            checkpoint=manager,
        )
        assert manager.saves > 2  # joint episodes + refine slices + final
        assert fingerprint(self._base()) == fingerprint(with_ck)

    @pytest.mark.parametrize("die_after", [2, 6])
    def test_killed_and_resumed_is_bit_identical(self, tmp_path, die_after):
        path = str(tmp_path / "ck.pkl")
        with pytest.raises(Killer):
            tune_alt(
                small_conv(), MACHINE, budget=self.BUDGET, seed=0,
                measure=mo(),
                checkpoint=KillingManager(path, die_after=die_after),
            )
        resumed = tune_alt(
            small_conv(), MACHINE, budget=self.BUDGET, seed=0, measure=mo(),
            checkpoint=CheckpointManager(path), restore=load_checkpoint(path),
        )
        assert fingerprint(self._base()) == fingerprint(resumed)

    def test_restore_refuses_a_different_run(self, tmp_path):
        path = str(tmp_path / "ck.pkl")
        tune_alt(
            small_conv(), MACHINE, budget=self.BUDGET, seed=0, measure=mo(),
            checkpoint=CheckpointManager(path),
        )
        payload = load_checkpoint(path)
        with pytest.raises(CheckpointError, match="seed"):
            tune_alt(
                small_conv(), MACHINE, budget=self.BUDGET, seed=1,
                measure=mo(), restore=payload,
            )


# ---------------------------------------------------------------------------
# CLI: interrupt -> flagged -> resume -> identical; chaos completes
# ---------------------------------------------------------------------------

TUNE_ARGS = ["tune", "gmm", "--size", "16", "--budget", "96", "--seed", "0",
             "--no-measure-cache"]


@pytest.mark.slow
class TestCliResume:
    def test_interrupted_run_resumes_to_identical_result(
        self, tmp_path, capsys
    ):
        # 1. uninterrupted reference run
        ref_store = str(tmp_path / "ref")
        assert cli_main(TUNE_ARGS + ["--run-store", ref_store]) == 0
        ref = RunStore(ref_store).latest()
        assert ref.status == STATUS_COMPLETED

        # 2. a completed run refuses to resume
        with pytest.raises(SystemExit, match="refusing to resume"):
            cli_main(["tune", "--resume", ref.path])

        # 3. interrupt a same-config run right after its second snapshot
        store = RunStore(str(tmp_path / "rs"))
        writer = store.create(
            "tune-gmm", machine=ref.manifest["machine"],
            seed=ref.manifest["seed"], workload=ref.manifest["workload"],
            config=dict(ref.manifest["config"]),
        ).begin()
        with pytest.raises(Killer):
            tune_alt(
                _single_op("gmm", 64, 16), MACHINE, budget=96, seed=0,
                measure=MeasureOptions(cache_dir=None),
                checkpoint=KillingManager(writer.checkpoint_path, die_after=2),
            )
        interrupted = RunRecord(writer.path)
        assert interrupted.status == STATUS_RUNNING
        assert interrupted.resumable

        # 4. `runs list` flags it
        capsys.readouterr()
        assert cli_main(["runs", "list", store.root]) == 0
        assert "interrupted" in capsys.readouterr().out

        # 5. resume completes it with the reference result, exactly
        assert cli_main(["tune", "--resume", writer.path]) == 0
        resumed = RunRecord(writer.path)
        assert resumed.status == STATUS_COMPLETED
        assert resumed.manifest["resumes"] == 1

        def tasks(rec):
            out = {}
            for name, t in rec.result["tasks"].items():
                t = dict(t)
                (t.get("telemetry") or {}).pop("wall_time_s", None)
                out[name] = t
            return out

        assert tasks(resumed) == tasks(ref)

    def test_resume_without_checkpoint_refuses(self, tmp_path):
        store = RunStore(str(tmp_path / "rs"))
        writer = store.create(
            "tune-gmm", machine="intel_cpu", seed=0, workload="tune:gmm",
            config={"op": "gmm", "tuner": "alt"},
        ).begin()  # running, but no snapshot ever hit disk
        with pytest.raises(SystemExit, match="no checkpoint"):
            cli_main(["tune", "--resume", writer.path])

    def test_chaos_run_completes_and_records_fault_counts(self, tmp_path):
        store = str(tmp_path / "chaos")
        assert cli_main(
            TUNE_ARGS + [
                "--run-store", store,
                "--inject-faults", "seed=7,oserror=0.1,crash=0.02",
            ]
        ) == 0
        rec = RunStore(store).latest()
        assert rec.status == STATUS_COMPLETED
        metrics = rec.metrics
        assert metrics.get("measure.errors", 0) > 0
        assert metrics.get("measure.retries", 0) > 0
        with open(os.path.join(rec.path, "result.json")) as f:
            tasks = json.load(f)["tasks"]
        assert tasks["gmm"]["telemetry"]["errors"] > 0
