"""Run registry, search-quality diagnostics and the noise-aware comparator."""

import json
import math

import pytest

from repro.cli import main
from repro.obs.compare import (
    DEFAULT_THRESHOLD,
    compare_summaries,
    render_compare,
    task_noise_rel,
)
from repro.obs.diagnostics import (
    cost_model_diagnostics,
    layout_episode_table,
    pairwise_rank_accuracy,
    ppo_curves,
    render_diagnostics,
    run_diagnostics,
    top_k_recall,
)
from repro.obs.runstore import (
    RunRecord,
    RunStore,
    load_summary,
    merge_summaries,
    new_run_id,
    trace_meta,
)
from repro.obs.trace import Trace


# ---------------------------------------------------------------------------
# Rank-quality primitives
# ---------------------------------------------------------------------------

def test_pairwise_rank_accuracy_perfect_and_inverted():
    # higher score must mean lower latency
    assert pairwise_rank_accuracy([3, 2, 1], [1e-6, 2e-6, 3e-6]) == (3, 3)
    assert pairwise_rank_accuracy([1, 2, 3], [1e-6, 2e-6, 3e-6]) == (0, 3)


def test_pairwise_rank_accuracy_skips_ties():
    correct, total = pairwise_rank_accuracy([1, 1, 2], [3e-6, 2e-6, 1e-6])
    assert total == 2  # the (0,1) score tie is not comparable
    assert correct == 2


def test_pairwise_rank_accuracy_ranks_failures():
    # predicting a failing (inf-latency) candidate below a working one is
    # a correct ranking
    assert pairwise_rank_accuracy([2, 1], [1e-6, math.inf]) == (1, 1)


def test_top_k_recall():
    pred = [4, 3, 2, 1]
    meas = [1e-6, 2e-6, 3e-6, 4e-6]
    assert top_k_recall(pred, meas, 2) == (2, 2)
    assert top_k_recall(pred, list(reversed(meas)), 2) == (0, 2)
    assert top_k_recall([], [], 8) == (0, 0)


# ---------------------------------------------------------------------------
# Cost-model calibration from trace events
# ---------------------------------------------------------------------------

def _batch_event(gen, predicted, measured):
    return {
        "kind": "event", "name": "cost_model_batch",
        "attrs": {"task": "g", "generation": gen,
                  "predicted": predicted, "measured": measured},
    }


def test_cost_model_diagnostics_pools_per_generation():
    events = [
        _batch_event(1, [3.0, 2.0], [1e-6, 2e-6]),
        _batch_event(1, [1.0], [3e-6]),
        _batch_event(2, [1.0, 2.0], [1e-6, 2e-6]),  # inverted ranking
    ]
    diag = cost_model_diagnostics(events, k=2)
    gens = diag["per_generation"]
    assert sorted(gens) == [1, 2]
    assert gens[1]["points"] == 3
    assert gens[1]["rank_accuracy"] == 1.0
    assert gens[2]["rank_accuracy"] == 0.0
    # overall sums the per-generation counts -- raw scores from different
    # retrain generations are not on a comparable scale
    o = diag["overall"]
    assert o["pairs_total"] == gens[1]["pairs_total"] + gens[2]["pairs_total"]
    assert o["pairs_correct"] == 3
    assert o["rank_accuracy"] == pytest.approx(3 / 4)
    assert o["batches"] == 3 and o["generations"] == 2
    assert o["topk_total"] == gens[1]["topk_total"] + gens[2]["topk_total"]


def test_cost_model_diagnostics_none_without_batches():
    assert cost_model_diagnostics([]) is None
    assert cost_model_diagnostics(
        [{"kind": "event", "name": "round", "attrs": {}}]
    ) is None


def test_run_diagnostics_bundle_and_render():
    events = [
        _batch_event(1, [2.0, 1.0], [1e-6, 2e-6]),
        {"kind": "event", "name": "ppo_update",
         "attrs": {"actor": "ppo.loop", "transitions": 8, "mean_reward": 1.0,
                   "policy_loss": 0.1, "value_loss": 0.2}},
        {"kind": "event", "name": "ppo_update",
         "attrs": {"actor": "ppo.loop", "transitions": 8, "mean_reward": 2.0,
                   "policy_loss": 0.1, "value_loss": 0.2}},
        {"kind": "event", "name": "layout_episode",
         "attrs": {"task": "g", "layout": "mt=4", "from_actor": True,
                   "best": 1e-6, "reward": 20.0}},
    ]
    metrics = {"propagation.conversions": 2}
    diag = run_diagnostics(events, metrics)
    assert diag["cost_model"]["overall"]["points"] == 2
    assert diag["ppo"]["ppo.loop"]["updates"] == 2
    assert diag["ppo"]["ppo.loop"]["first_reward"] == 1.0
    assert diag["layout_episodes"][0]["layout"] == "mt=4"
    assert diag["propagation"]["conversions"] == 2
    text = render_diagnostics(diag)
    assert "cost model" in text and "ppo.loop" in text and "mt=4" in text
    json.dumps(diag)  # summaries must be JSON-serializable


def test_ppo_curves_and_layout_table_empty():
    assert ppo_curves([]) is None
    assert layout_episode_table([]) == []


# ---------------------------------------------------------------------------
# Noise estimate + comparator
# ---------------------------------------------------------------------------

def _rounds(*bests):
    return [{"round": i, "round_best": b} for i, b in enumerate(bests)]


def test_task_noise_rel_plateau_spread():
    # spread of the 5 best round results relative to the best
    assert task_noise_rel(
        _rounds(1e-6, 1.02e-6, 1.04e-6, 1.06e-6, 1.1e-6, 9e-6)
    ) == pytest.approx(0.1)
    assert task_noise_rel(_rounds(1e-6)) == 0.0
    assert task_noise_rel([]) == 0.0
    # non-finite / non-positive rounds are ignored, spread is clamped
    assert task_noise_rel(_rounds(1e-6, math.inf, 1e-5)) == 0.5


def _summary(latency, *, noise=0.0, measurements=64, acc=None, run_id="r",
             seed=0):
    diag = None
    if acc is not None:
        correct = int(round(acc * 100))
        diag = {"cost_model": {"overall": {
            "rank_accuracy": acc, "pairs_correct": correct,
            "pairs_total": 100, "points": 50, "topk_hits": 4,
            "topk_total": 8, "batches": 5, "generations": 2,
        }, "per_generation": {}}}
    return {
        "schema": 1, "run_id": run_id, "machine": "intel_cpu", "seed": seed,
        "git_sha": "abc", "repro_version": "0.1.0",
        "tasks": {"g": {"best_latency": latency, "measurements": measurements,
                        "noise_rel": noise}},
        "model": None, "diagnostics": diag,
    }


def test_compare_identical_runs():
    result = compare_summaries(_summary(1e-6, acc=0.8),
                               _summary(1e-6, acc=0.8))
    assert result["verdict"] == "identical"
    assert result["failures"] == []
    assert result["tasks"][0]["delta_rel"] == 0.0
    assert result["geomean_latency_ratio"] == 1.0
    assert result["rank_accuracy"]["delta"] == 0.0


def test_compare_regression_beyond_threshold_fails():
    result = compare_summaries(_summary(1e-6), _summary(1.2e-6))
    assert result["verdict"] == "fail"
    assert result["tasks"][0]["status"] == "regressed"
    assert "regressed" in result["failures"][0]
    assert "FAIL" in render_compare(result)


def test_compare_within_threshold_passes():
    result = compare_summaries(_summary(1e-6), _summary(1.03e-6))
    assert result["verdict"] == "pass"  # not identical: latencies differ
    assert result["tasks"][0]["status"] == "unchanged"


def test_compare_noise_widens_tolerance():
    # 20% regression but the task's own search noise is 30%: no failure
    result = compare_summaries(_summary(1e-6, noise=0.3), _summary(1.2e-6))
    assert result["verdict"] == "pass"
    assert result["tasks"][0]["tolerance"] == pytest.approx(0.3)


def test_compare_improvement_is_not_a_failure():
    result = compare_summaries(_summary(1e-6), _summary(0.5e-6))
    assert result["verdict"] == "pass"
    assert result["tasks"][0]["status"] == "improved"


def test_compare_missing_task_fails():
    cand = _summary(1e-6)
    cand["tasks"] = {}
    result = compare_summaries(_summary(1e-6), cand)
    assert result["verdict"] == "fail"
    assert result["tasks"][0]["status"] == "missing-in-candidate"


def test_compare_rank_accuracy_drop_fails_even_with_equal_latency():
    result = compare_summaries(_summary(1e-6, acc=0.9),
                               _summary(1e-6, acc=0.6))
    assert result["verdict"] == "fail"
    assert any("rank accuracy" in f for f in result["failures"])


def test_compare_handles_nonfinite_latency():
    result = compare_summaries(_summary(math.inf), _summary(math.inf))
    assert result["tasks"][0]["status"] == "not-comparable"
    assert result["verdict"] == "identical"  # equally broken on both sides


# ---------------------------------------------------------------------------
# Run store: write, resolve, summarize, merge
# ---------------------------------------------------------------------------

def _fake_trace(seed=0):
    trace = Trace(name="t", meta=trace_meta(seed))
    with trace.span("tune_task", task="g"):
        trace.event(
            "cost_model_batch", task="g", generation=1,
            predicted=[3.0, 2.0, 1.0], measured=[1e-6, 2e-6, 3e-6],
        )
    trace.metrics.counter("propagation.conversions").inc(2)
    return trace


def _fake_tasks(latency=1e-6):
    return {"g": {
        "best_latency": latency, "measurements": 12,
        "telemetry": {"fresh_evaluations": 12},
        "layouts": {"a": "Layout[...]"}, "schedule": "LoopSchedule(...)",
        "timeline": _rounds(latency, latency * 1.05, latency * 1.1),
    }}


def _write_run(store, latency=1e-6, seed=0, name="tune-g"):
    writer = store.create(
        name, machine="intel_cpu", seed=seed, workload="tune:g",
        config={"budget": 96},
    )
    return writer.finish(_fake_trace(seed), _fake_tasks(latency))


def test_run_id_is_sortable_and_sluggy():
    rid = new_run_id("tune gmm/16")
    assert "/" not in rid and " " not in rid
    assert rid.split("-", 1)[0].startswith("20")


def test_runstore_round_trip(tmp_path):
    store = RunStore(str(tmp_path / "rs"))
    rec = _write_run(store)
    assert store.run_ids() == [rec.run_id]
    again = store.load(rec.run_id)
    assert again.manifest["machine"] == "intel_cpu"
    assert again.manifest["git_sha"] == rec.manifest["git_sha"]
    assert again.result["tasks"]["g"]["best_latency"] == 1e-6
    assert "timeline" not in again.result["tasks"]["g"]  # lives in rounds.jsonl
    assert [r["round"] for r in again.rounds] == [0, 1, 2]
    assert again.metrics["propagation.conversions"] == 2
    assert again.trace.meta.get("seed") == 0


def test_runstore_resolves_prefix_and_latest(tmp_path):
    store = RunStore(str(tmp_path / "rs"))
    first = _write_run(store, name="aaa")
    second = _write_run(store, name="zzz")
    assert store.latest().run_id == max(first.run_id, second.run_id)
    unique_prefix = first.run_id[:-1]
    assert store.load(unique_prefix).run_id == first.run_id
    with pytest.raises(FileNotFoundError):
        store.load("nope")
    with pytest.raises(FileNotFoundError):
        store.load(first.run_id.split("-")[0][:4])  # shared stamp prefix


def test_run_summary_contents(tmp_path):
    rec = _write_run(RunStore(str(tmp_path / "rs")))
    s = rec.summary()
    assert s["tasks"]["g"]["best_latency"] == 1e-6
    assert s["tasks"]["g"]["noise_rel"] == pytest.approx(0.1)  # (1.1-1)/1
    assert s["diagnostics"]["cost_model"]["overall"]["rank_accuracy"] == 1.0
    assert s["diagnostics"]["propagation"]["conversions"] == 2
    assert s["seed"] == 0 and s["machine"] == "intel_cpu"
    json.dumps(s)


def test_load_summary_resolution_forms(tmp_path):
    root = str(tmp_path / "rs")
    store = RunStore(root)
    rec = _write_run(store)
    by_dir = load_summary(rec.path)
    by_id = load_summary(rec.run_id, store=root)
    by_store = load_summary(root)  # whole store, merged
    assert by_dir["run_id"] == by_id["run_id"] == rec.run_id
    assert by_store["tasks"] == by_dir["tasks"]
    # a committed summary JSON file resolves too
    path = tmp_path / "baseline.json"
    path.write_text(json.dumps(by_dir))
    assert load_summary(str(path))["run_id"] == rec.run_id
    with pytest.raises(ValueError):
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        load_summary(str(bad))
    with pytest.raises(FileNotFoundError):
        load_summary("missing-run")


def test_merge_summaries_pools_calibration_counts(tmp_path):
    store = RunStore(str(tmp_path / "rs"))
    a = _write_run(store, name="one").summary()
    b = _write_run(store, name="two").summary()
    b["tasks"] = {"h": b["tasks"]["g"]}
    merged = merge_summaries([a, b], source="rs")
    assert sorted(merged["tasks"]) == ["g", "h"]
    o = merged["diagnostics"]["cost_model"]["overall"]
    assert o["pairs_total"] == 6  # 3 comparable pairs per run, pooled exactly
    assert o["rank_accuracy"] == 1.0
    with pytest.raises(ValueError):
        merge_summaries([])


# ---------------------------------------------------------------------------
# CLI integration: tune --run-store, runs list/show/export/compare
# ---------------------------------------------------------------------------

TUNE_ARGS = ["tune", "gmm", "--size", "16", "--budget", "96", "--seed", "0",
             "--no-measure-cache"]


@pytest.fixture(scope="module")
def seeded_store(tmp_path_factory):
    """Two identical-seed tuning runs recorded into one store."""
    root = str(tmp_path_factory.mktemp("registry") / "rs")
    for _ in range(2):
        assert main(TUNE_ARGS + ["--run-store", root]) == 0
    store = RunStore(root)
    ids = store.run_ids()
    assert len(ids) == 2
    return root, ids


def test_cli_tune_records_run(seeded_store):
    root, ids = seeded_store
    rec = RunStore(root).load(ids[0])
    assert rec.manifest["seed"] == 0
    assert rec.manifest["workload"].startswith("tune:gmm")
    assert rec.manifest["config"]["budget"] == 96
    assert "gmm" in rec.result["tasks"]
    # the trace rode along with attribution meta
    assert rec.trace.meta.get("seed") == 0
    assert rec.trace.meta.get("repro_version")


def test_cli_runs_list_and_show(seeded_store, capsys):
    root, ids = seeded_store
    assert main(["runs", "list", root]) == 0
    out = capsys.readouterr().out
    for rid in ids:
        assert rid in out
    assert main(["runs", "show", "latest", "--store", root]) == 0
    out = capsys.readouterr().out
    assert "task gmm" in out
    assert "search-quality diagnostics" in out
    assert "rank accuracy" in out


def test_cli_identical_seed_runs_compare_identical(seeded_store, tmp_path,
                                                   capsys):
    root, ids = seeded_store
    out_path = str(tmp_path / "BENCH_compare.json")
    rc = main(["runs", "compare", ids[0], ids[1], "--store", root,
               "--out", out_path])
    assert rc == 0
    assert "verdict: IDENTICAL" in capsys.readouterr().out
    with open(out_path) as f:
        result = json.load(f)
    assert result["verdict"] == "identical"
    assert result["tasks"][0]["task"] == "gmm"
    assert result["tasks"][0]["delta_rel"] == 0.0
    assert result["rank_accuracy"]["baseline"] is not None
    assert result["rank_accuracy"]["delta"] == 0.0
    assert result["threshold"] == DEFAULT_THRESHOLD


def test_cli_runs_export_and_gate_regression(seeded_store, tmp_path, capsys):
    root, ids = seeded_store
    baseline = str(tmp_path / "BENCH_baseline.json")
    assert main(["runs", "export", ids[0], "--store", root,
                 "--out", baseline]) == 0
    capsys.readouterr()
    # a doctored slower candidate must fail the gate with exit code 1
    with open(baseline) as f:
        worse = json.load(f)
    worse["tasks"]["gmm"]["best_latency"] *= 2.0
    worse_path = str(tmp_path / "worse.json")
    with open(worse_path, "w") as f:
        json.dump(worse, f)
    rc = main(["runs", "compare", baseline, worse_path,
               "--out", str(tmp_path / "cmp.json")])
    assert rc == 1
    out = capsys.readouterr().out
    assert "regressed" in out and "verdict: FAIL" in out
    # and the committed-baseline direction passes against the live store
    rc = main(["runs", "compare", baseline, root,
               "--out", str(tmp_path / "cmp2.json")])
    assert rc == 0
