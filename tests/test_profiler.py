"""Phase profiler: self-time accounting, null path, reports, throughput gate.

The invariants under test mirror the tracer's contract (see test_obs.py):
profiling off must be *free* -- bit-identical tuned results and a sub-2%
per-call overhead budget -- and profiling on must account for where the
wall time went (phase self times partition the root ``tune`` phase).
"""

import json
import time

import pytest

from repro.cli import main
from repro.ir.tensor import Tensor
from repro.machine.spec import get_machine
from repro.obs.compare import (
    THROUGHPUT_THRESHOLD,
    compare_throughput,
    render_throughput_compare,
)
from repro.obs.profiler import (
    NULL_PROFILER,
    _NULL_PHASE,
    Profiler,
    attribution_fraction,
    profile_report,
)
from repro.ops.gemm import gemm
from repro.tuning.baselines import tune_alt
from repro.tuning.measurer import MeasureOptions


@pytest.fixture(scope="module")
def machine():
    return get_machine("intel_cpu")


def _gmm(size=16):
    return gemm(Tensor("a", (size, size)), Tensor("b", (size, size)),
                name="gmm")


def _no_disk_cache():
    return MeasureOptions(cache_dir=None)


@pytest.fixture(scope="module")
def profiled_pair(machine):
    """The same pinned tune twice: profiler off then on, with wall clocks."""
    t0 = time.perf_counter()
    plain = tune_alt(_gmm(), machine, budget=64, seed=0,
                     measure=_no_disk_cache())
    plain_wall = time.perf_counter() - t0
    prof = Profiler()
    t0 = time.perf_counter()
    profiled = tune_alt(_gmm(), machine, budget=64, seed=0,
                        measure=_no_disk_cache(), profiler=prof)
    prof_wall = time.perf_counter() - t0
    return plain, plain_wall, profiled, prof_wall, prof


# ---------------------------------------------------------------------------
# Self-time accounting
# ---------------------------------------------------------------------------

def test_nested_phases_partition_wall_time():
    prof = Profiler()
    with prof.phase("tune"):
        with prof.phase("outer"):
            with prof.phase("inner"):
                time.sleep(0.01)
            time.sleep(0.01)
    tune, outer, inner = (prof.phases[n] for n in ("tune", "outer", "inner"))
    # each phase's self time excludes its nested phases exactly
    assert outer.total_s == pytest.approx(outer.self_s + inner.total_s)
    assert tune.total_s == pytest.approx(
        tune.self_s + outer.self_s + inner.self_s, rel=1e-6
    )
    # the root accumulator is the wall clock of root-level phases
    assert prof.wall_s == pytest.approx(tune.total_s)
    assert inner.self_s >= 0.01


def test_repeated_phases_aggregate_one_stat():
    prof = Profiler()
    for _ in range(5):
        with prof.phase("lower", items=3):
            pass
    stat = prof.phases["lower"]
    assert stat.count == 5
    assert stat.items == 15
    assert stat.items_per_s is None or stat.items_per_s > 0
    assert len(prof.phases) == 1


def test_add_items_mid_block():
    prof = Profiler()
    with prof.phase("space.sample") as ph:
        ph.add_items(7)
        ph.add_items(3)
    assert prof.phases["space.sample"].items == 10


def test_mispaired_exit_is_tolerated():
    prof = Profiler()
    outer = prof.phase("outer")
    inner = prof.phase("inner")
    outer.__enter__()
    inner.__enter__()
    # exiting the outer frame first pops the leaked inner frame with it
    outer.__exit__(None, None, None)
    assert prof._stack == []
    assert "outer" in prof.phases


def test_wall_s_fallback_before_root_closes():
    prof = Profiler()
    with prof.phase("tune"):
        with prof.phase("inner"):
            time.sleep(0.005)
        # root still open: the pie so far is the sum of closed self times
        assert prof.wall_s == pytest.approx(
            prof.phases["inner"].self_s
        )


def test_tally_rides_in_aux_not_the_phase_pie():
    prof = Profiler()
    prof.tally("cost_model.predict.gen1", 0.5, items=100)
    prof.tally("cost_model.predict.gen1", 0.5, items=100)
    assert prof.phases == {}
    row = prof.aux["cost_model.predict.gen1"]
    assert row["count"] == 2 and row["total_s"] == 1.0 and row["items"] == 200
    d = prof.to_dict()
    assert d["aux"]["cost_model.predict.gen1"]["items_per_s"] == 200.0


def test_to_dict_schema():
    prof = Profiler()
    with prof.phase("tune", items=4):
        pass
    d = prof.to_dict()
    assert d["schema"] == 1 and d["enabled"] is True
    st = d["phases"]["tune"]
    assert set(st) == {"count", "total_s", "self_s", "items", "items_per_s"}


# ---------------------------------------------------------------------------
# Null path: zero cost when disabled
# ---------------------------------------------------------------------------

def test_null_profiler_records_nothing_and_shares_one_phase():
    assert NULL_PROFILER.phase("anything") is _NULL_PHASE
    with NULL_PROFILER.phase("tune", items=5) as ph:
        ph.add_items(10)
    NULL_PROFILER.tally("x", 1.0, items=1)
    NULL_PROFILER.cprofile_start()
    NULL_PROFILER.memory_start()
    assert NULL_PROFILER.snapshot_memory("r") is None
    assert NULL_PROFILER.phases == {}
    assert NULL_PROFILER.aux == {}
    assert NULL_PROFILER.wall_s == 0.0
    assert NULL_PROFILER.cprofile_folded() == []


def test_profiled_results_bit_identical(profiled_pair):
    plain, _, profiled, _, prof = profiled_pair
    assert profiled.best_latency == plain.best_latency
    assert profiled.measurements == plain.measurements
    assert str(profiled.best_schedule) == str(plain.best_schedule)
    assert {k: str(v) for k, v in profiled.best_layouts.items()} \
        == {k: str(v) for k, v in plain.best_layouts.items()}
    assert prof.phases  # and the profiled run actually recorded phases


def test_disabled_profiler_overhead_under_budget(profiled_pair):
    """The <2% overhead budget: phase entries x per-entry null cost.

    Measured directly (profiled wall vs plain wall) the difference drowns
    in scheduler noise, so the assertion is constructive: count how many
    phase entries the pinned tune performs, time the disabled-profiler
    fast path per entry, and require the product to fit the budget.
    """
    _, plain_wall, _, _, prof = profiled_pair
    entries = sum(s.count for s in prof.phases.values())
    n = 20000
    t0 = time.perf_counter()
    for _ in range(n):
        with NULL_PROFILER.phase("x", items=1):
            pass
    per_entry = (time.perf_counter() - t0) / n
    assert entries * per_entry < 0.02 * plain_wall, (
        f"{entries} phase entries x {per_entry * 1e9:.0f} ns/entry "
        f"exceeds 2% of the {plain_wall:.2f}s tune"
    )


def test_attribution_covers_90_percent_of_tune_wall(profiled_pair):
    *_, prof = profiled_pair
    frac = attribution_fraction(prof)
    assert frac >= 0.9, f"only {frac:.1%} of tune wall time attributed"
    # and never more than the whole pie (self times cannot overlap)
    assert frac <= 1.0 + 1e-6


# ---------------------------------------------------------------------------
# Reports
# ---------------------------------------------------------------------------

def test_profile_report_renders_hot_path_table(profiled_pair):
    *_, prof = profiled_pair
    out = profile_report(prof)
    assert "phase profile" in out
    for phase in ("lower", "cost_model.train", "cost_model.predict",
                  "ppo.update", "space.sample", "measure"):
        assert phase in out
    assert "(untracked)" in out
    assert "per-generation cost-model inference" in out
    # dict payloads (profile.json round trip) render identically
    assert profile_report(prof.to_dict()) == out


def test_profile_report_sort_orders():
    prof = Profiler()
    with prof.phase("tune"):
        with prof.phase("bbb"):
            time.sleep(0.002)
        with prof.phase("aaa"):
            pass
    by_name = profile_report(prof, sort="name")
    assert by_name.index("aaa") < by_name.index("bbb")
    by_self = profile_report(prof, sort="self")
    assert by_self.index("bbb") < by_self.index("aaa")


def test_profile_report_empty():
    assert "(no phases recorded)" in profile_report(Profiler())


def test_attribution_fraction_without_root_is_zero():
    prof = Profiler()
    with prof.phase("lower"):
        pass
    assert attribution_fraction(prof) == 0.0


# ---------------------------------------------------------------------------
# Opt-in deep capture: cProfile folded stacks, tracemalloc snapshots
# ---------------------------------------------------------------------------

def test_cprofile_folded_stacks(tmp_path):
    prof = Profiler()
    prof.cprofile_start()
    sorted([((i * 7) % 13) for i in range(5000)])
    prof.cprofile_stop()
    lines = prof.cprofile_folded()
    assert lines
    for line in lines:
        stack, value = line.rsplit(" ", 1)
        assert int(value) >= 0
        assert stack  # "caller;callee" or a root frame label
    path = tmp_path / "stacks.folded"
    n = prof.save_folded(str(path))
    assert n == len(lines)
    assert len(path.read_text().splitlines()) == n


def test_memory_snapshots_at_round_boundaries():
    prof = Profiler()
    assert prof.snapshot_memory("before-start") is None  # no-op until started
    prof.memory_start()
    ballast = [bytes(2048) for _ in range(200)]
    snap = prof.snapshot_memory("round 1")
    prof.memory_stop()
    assert ballast is not None
    assert snap["label"] == "round 1"
    assert snap["current_kb"] > 0 and snap["peak_kb"] >= snap["current_kb"]
    assert snap["top"] and all("site" in r for r in snap["top"])
    assert prof.to_dict()["memory"] == [snap]
    out = profile_report(prof.to_dict() | {"phases": {"x": {"count": 1}}})
    assert "allocation snapshots" in out


# ---------------------------------------------------------------------------
# Throughput gate (BENCH_tuner_throughput.json comparator)
# ---------------------------------------------------------------------------

def _bench(cps_by_name, noise=0.0):
    return {
        "schema": 1,
        "workloads": {
            name: {
                "candidates": 64,
                "candidates_per_s": cps,
                "noise_rel": noise,
                "phases": {
                    "lower": {
                        "self_s": 64 / max(cps, 1e-9) * 0.5,
                        "items_per_s": None,
                    },
                    "cost_model.train": {
                        "self_s": 64 / max(cps, 1e-9) * 0.4,
                        "items_per_s": None,
                    },
                },
            }
            for name, cps in cps_by_name.items()
        },
    }


def test_throughput_identical_passes():
    base = _bench({"gmm-s16-b96": 30.0})
    result = compare_throughput(base, base)
    assert result["verdict"] == "pass"
    assert result["workloads"][0]["status"] == "unchanged"


def test_throughput_injected_regression_fails():
    base = _bench({"gmm-s16-b96": 30.0, "c2d-ch8-s8-b96": 25.0})
    cand = _bench({"gmm-s16-b96": 30.0 / 4, "c2d-ch8-s8-b96": 25.0})
    result = compare_throughput(base, cand)
    assert result["verdict"] == "fail"
    assert any("gmm-s16-b96" in msg for msg in result["failures"])
    row = next(r for r in result["workloads"]
               if r["workload"] == "gmm-s16-b96")
    assert row["status"] == "regressed"
    # the regression row carries per-phase self-time attribution
    assert {p["phase"] for p in row["phases"]} \
        == {"lower", "cost_model.train"}
    rendered = render_throughput_compare(result)
    assert "FAIL" in rendered and "regressed" in rendered
    assert "lower" in rendered  # attribution rides with the failure


def test_throughput_noise_widens_tolerance():
    base = _bench({"w": 30.0}, noise=0.8)
    cand = _bench({"w": 30.0 * (1 - 0.7)})  # within the 80% noise band
    result = compare_throughput(base, cand)
    assert result["verdict"] == "pass"
    assert result["workloads"][0]["tolerance"] == pytest.approx(0.8)


def test_throughput_missing_workload_fails():
    base = _bench({"w1": 30.0, "w2": 20.0})
    cand = _bench({"w1": 30.0})
    result = compare_throughput(base, cand)
    assert result["verdict"] == "fail"
    assert any("missing" in msg for msg in result["failures"])
    # an extra candidate workload is informational, not a failure
    assert compare_throughput(cand, base)["verdict"] == "pass"


def test_throughput_nonfinite_is_not_comparable():
    base = _bench({"w": 0.0})
    cand = _bench({"w": 30.0})
    result = compare_throughput(base, cand)
    assert result["workloads"][0]["status"] == "not-comparable"
    assert result["verdict"] == "pass"


def test_throughput_threshold_floor():
    assert 0 < THROUGHPUT_THRESHOLD < 1


# ---------------------------------------------------------------------------
# CLI: repro profile / --profile / runs show
# ---------------------------------------------------------------------------

def test_cli_profile_command(tmp_path, capsys):
    out_json = tmp_path / "profile.json"
    folded = tmp_path / "stacks.folded"
    rc = main([
        "profile", "gmm", "--size", "8", "--budget", "24",
        "--cprofile-out", str(folded), "--out", str(out_json),
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "phase profile" in out
    assert "attribution" in out
    assert "candidates" in out
    payload = json.loads(out_json.read_text())
    assert payload["schema"] == 1 and payload["phases"]
    assert folded.read_text().strip()


def test_cli_profile_gate_self_baseline(tmp_path, capsys, monkeypatch):
    """Gate mode round trip on a tiny pinned workload set."""
    import repro.cli as cli

    monkeypatch.setattr(
        cli, "GATE_WORKLOADS", {"gmm-s8-b24": ("gmm", 8, 8, 24)}
    )
    bench = tmp_path / "bench.json"
    rc = main(["profile", "gate", "--repeats", "2", "--out", str(bench)])
    assert rc == 0
    data = json.loads(bench.read_text())
    wl = data["workloads"]["gmm-s8-b24"]
    assert wl["candidates_per_s"] > 0 and wl["repeats"] == 2
    assert wl["phases"]["lower"]["self_s"] >= 0
    capsys.readouterr()
    # compare a fresh measurement against the file just written: same
    # machine, same seed -> must pass the gate
    rc = main([
        "profile", "gate", "--repeats", "2", "--out",
        str(tmp_path / "bench2.json"), "--baseline", str(bench),
    ])
    out = capsys.readouterr().out
    assert rc == 0, out
    assert "verdict: PASS" in out


def test_cli_tune_profile_flag_persists_and_prints(tmp_path, capsys):
    root = str(tmp_path / "runs")
    rc = main([
        "tune", "gmm", "--size", "8", "--budget", "24",
        "--no-measure-cache", "--run-store", root, "--profile",
    ])
    assert rc == 0
    out = capsys.readouterr().out
    assert "phase profile" in out
    from repro.obs.runstore import RunStore

    rec = RunStore(root).latest()
    assert rec.profile["phases"]
    assert rec.profile["schema"] == 1
    # runs show renders the persisted hot-path table
    assert main(["runs", "show", rec.run_id, "--store", root]) == 0
    out = capsys.readouterr().out
    assert "phase profile" in out and "lower" in out


def test_cli_profile_rejects_non_alt_tuner(tmp_path):
    with pytest.raises(SystemExit):
        main([
            "tune", "gmm", "--size", "8", "--budget", "24",
            "--tuner", "ansor", "--profile", "--no-measure-cache",
        ])
