"""Whole-graph compilation: every mode compiles, runs, and stays correct."""

import math

import numpy as np
import pytest

from repro.exec.graph_runner import random_inputs, run_compiled, run_graph_reference
from repro.graph.builder import GraphBuilder
from repro.machine.spec import get_machine
from repro.pipeline import CompileOptions, compile_graph, default_schedule, task_signature
from repro.lower.lower import lower_compute


def tiny_cnn():
    b = GraphBuilder("tiny_cnn")
    x = b.input((1, 4, 12, 12))
    x = b.conv_bn_act(x, 8, 3)
    x = b.conv_bn_act(x, 8, 3, stride=2)
    x = b.max_pool2d(x, 2, 2)
    x = b.global_avg_pool(x)
    x = b.dense(x, 10)
    return b.build()


@pytest.fixture(scope="module")
def machine():
    return get_machine("intel_cpu")


@pytest.mark.parametrize("mode", ["alt", "alt-wp", "alt-ol", "ansor", "autotvm", "vendor"])
def test_compile_and_execute_all_modes(mode, machine):
    g = tiny_cnn()
    model = compile_graph(g, machine, CompileOptions(mode=mode, total_budget=96, seed=0))
    assert math.isfinite(model.latency_s) and model.latency_s > 0
    inputs = random_inputs(model.graph, seed=7)
    ref = run_graph_reference(model.graph, inputs)
    got = run_compiled(model, inputs)
    for name, arr in got.items():
        assert np.allclose(arr, ref[name], atol=1e-8), (mode, name)


def test_alt_wp_fuses_less_than_alt(machine):
    """Without replication (ALT-WP) fusion conflicts shrink the fuse set
    whenever layouts were actually transformed."""
    alt = compile_graph(
        tiny_cnn(), machine, CompileOptions(mode="alt", total_budget=96, seed=0)
    )
    wp = compile_graph(
        tiny_cnn(), machine, CompileOptions(mode="alt-wp", total_budget=96, seed=0)
    )
    transformed = any(
        not lay.is_identity
        for name, lay in alt.layouts.items()
        if name.endswith(".out")
    )
    if transformed:
        assert len(wp.fuse_groups) <= len(alt.fuse_groups)


def test_task_dedup(machine):
    """Two identical convs share one tuning task."""
    b = GraphBuilder("dedup")
    x = b.input((1, 4, 10, 10))
    x = b.conv2d(x, 4, 3)
    x = b.relu(x)
    x = b.conv2d(x, 4, 3)
    g = b.build()
    convs = [n for n in g.nodes if "conv" in n.tags]
    assert task_signature(convs[0]) == task_signature(convs[1])
    model = compile_graph(g, machine, CompileOptions(total_budget=64, seed=0))
    assert len(model.task_results) == 1


def test_conversion_inserted_between_complex_ops(machine):
    """Two back-to-back convs with different tuned layouts trigger a
    conversion operator (Algorithm 1 line 4) -- forced here by locking."""
    b = GraphBuilder("conv_chain")
    x = b.input((1, 8, 10, 10))
    x = b.conv2d(x, 8, 3, pad=0)   # conv reads graph input directly
    g = b.build()
    from repro.layout.layout import Layout
    from repro.layout.propagation import PropagationEngine

    conv = next(n for n in g.nodes if "conv" in n.tags)
    engine = PropagationEngine(g)
    in_t = conv.inputs[0]
    lay = Layout(in_t.shape).reorder([0, 2, 3, 1])
    engine.assign_operator_layouts(conv, {in_t.name: lay})
    assert engine.state.conversions
    g.validate()


def test_default_schedule_legal_for_all_nodes(machine):
    g = tiny_cnn()
    for node in g.nodes:
        bare = lower_compute(node, {})
        sched = default_schedule(bare, machine)
        lower_compute(node, {}, sched)  # must not raise


def test_compiled_latency_scales_with_budget_quality(machine):
    """More tuning budget should not make the compiled model slower."""
    small = compile_graph(
        tiny_cnn(), machine, CompileOptions(mode="ansor", total_budget=32, seed=0)
    ).latency_s
    big = compile_graph(
        tiny_cnn(), machine, CompileOptions(mode="ansor", total_budget=128, seed=0)
    ).latency_s
    assert big <= small * 1.05


def test_bad_mode_rejected():
    with pytest.raises(ValueError):
        CompileOptions(mode="wat")
