"""Renderers and the timeline recorder: self-time columns, sibling sort,
round records -- plus the trace/runstore hardening that rides with them
(atomic saves, corrupt-manifest tolerance)."""

import json
import os

import pytest

from repro.cli import main
from repro.obs.render import (
    span_coverage,
    span_self_s,
    timeline_report,
    trace_report,
)
from repro.obs.timeline import (
    TimelineRecorder,
    best_so_far_curve,
    timeline_from_events,
)
from repro.obs.trace import NULL_TRACE, Trace, build_span_tree, load_trace


def _span(name, t0, t1, sid, parent=None):
    return {"kind": "span", "id": sid, "parent": parent, "name": name,
            "t_start": t0, "t_end": t1, "attrs": {}}


def _tree():
    """root(10s) > [b(4s) > leaf(1s), a(2s)]; root self 4s, b self 3s."""
    spans = [
        _span("root", 0.0, 10.0, 1),
        _span("b", 1.0, 5.0, 2, parent=1),
        _span("leaf", 2.0, 3.0, 3, parent=2),
        _span("a", 6.0, 8.0, 4, parent=1),
    ]
    from repro.obs.trace import TraceData

    return TraceData({"name": "t"}, spans, [], {})


# ---------------------------------------------------------------------------
# trace_report: self time, percent-of-parent, sibling sort
# ---------------------------------------------------------------------------

def test_span_self_s_subtracts_direct_children():
    data = _tree()
    root = data.roots[0]
    assert span_self_s(root) == pytest.approx(4.0)  # 10 - (4 + 2)
    b = root.children[0]
    assert span_self_s(b) == pytest.approx(3.0)  # 4 - 1
    assert span_self_s(b.children[0]) == pytest.approx(1.0)
    assert span_coverage(root) == pytest.approx(0.6)


def test_trace_report_renders_self_and_parent_columns():
    out = trace_report(_tree())
    root_line = next(ln for ln in out.splitlines() if "root" in ln)
    assert "self" in root_line and "100.0%" in root_line
    b_line = next(ln for ln in out.splitlines() if " b " in ln)
    # b: 4s total = 40% of root; 3s self; 40% of parent
    assert "40.0%" in b_line
    assert "3.000 s" in b_line


def test_trace_report_sort_orders_siblings():
    data = _tree()
    chron = trace_report(data)  # default: chronological (b before a)
    assert chron.index(" b ") < chron.index(" a ")
    by_name = trace_report(data, sort="name")
    assert by_name.index(" a ") < by_name.index(" b ")
    by_total = trace_report(data, sort="total")
    assert by_total.index(" b ") < by_total.index(" a ")
    by_self = trace_report(data, sort="self")
    assert by_self.index(" b ") < by_self.index(" a ")


def test_trace_report_rejects_unknown_sort():
    with pytest.raises(ValueError):
        trace_report(_tree(), sort="duration")


def test_trace_report_truncates_wide_spans():
    spans = [_span("root", 0.0, 10.0, 1)]
    for i in range(6):
        spans.append(_span(f"c{i}", i, i + 1.0, 10 + i, parent=1))
    from repro.obs.trace import TraceData

    data = TraceData({"name": "t"}, spans, [], {})
    out = trace_report(data, max_children=4)
    assert "... 2 more spans" in out
    assert "c5" not in out


def test_cli_trace_sort_flag(tmp_path, capsys):
    trace = Trace(name="t")
    with trace.span("root"):
        with trace.span("bbb"):
            pass
        with trace.span("aaa"):
            pass
    path = str(tmp_path / "t.jsonl")
    trace.save(path)
    assert main(["trace", path, "--sort", "name"]) == 0
    out = capsys.readouterr().out
    assert out.index("aaa") < out.index("bbb")


# ---------------------------------------------------------------------------
# Timeline recorder
# ---------------------------------------------------------------------------

class _FakeComp:
    name = "g"


class _FakeTask:
    comp = _FakeComp()
    best_latency = 2e-6
    measurements = 8
    trace = NULL_TRACE

    def remaining_budget(self):
        return 40


def test_timeline_recorder_round_fields():
    rec = TimelineRecorder(_FakeTask())
    entry = rec.record("joint", layout="L0", round_best=3e-6, reward=0.5,
                       top_k=[3e-6, 4e-6])
    assert entry == {
        "round": 0, "stage": "joint", "task": "g", "layout": "L0",
        "round_best": 3e-6, "reward": 0.5, "top_k": [3e-6, 4e-6],
        "best_so_far": 2e-6, "measurements": 8, "budget_remaining": 40,
    }
    rec.record("loop")
    assert [r["round"] for r in rec.rounds] == [0, 1]
    snap = rec.snapshot()
    snap[0]["stage"] = "mutated"
    assert rec.rounds[0]["stage"] == "joint"  # snapshot copies


def test_timeline_recorder_emits_trace_events():
    task = _FakeTask()
    task.trace = Trace(name="t")
    rec = TimelineRecorder(task)
    rec.record("joint", reward=1.0)
    rounds = timeline_from_events(
        [e for e in task.trace.events if e.get("kind") == "event"]
    )
    assert len(rounds) == 1 and rounds[0]["reward"] == 1.0


def test_timeline_from_events_ignores_other_events():
    events = [
        {"name": "round", "attrs": {"round": 0, "best_so_far": 1.0}},
        {"name": "cost_model_batch", "attrs": {"generation": 1}},
        {"name": "round", "attrs": {"round": 1, "best_so_far": None}},
    ]
    rounds = timeline_from_events(events)
    assert len(rounds) == 2
    assert best_so_far_curve(rounds) == [1.0]


def test_timeline_report_from_round_dicts():
    rounds = [
        {"task": "g", "stage": "joint", "best_so_far": 2e-6, "reward": 0.1,
         "measurements": 4, "budget_remaining": 60},
        {"task": "g", "stage": "loop", "best_so_far": 1e-6, "reward": 0.9,
         "measurements": 8, "budget_remaining": 56},
    ]
    out = timeline_report(rounds)
    assert "g: 2 rounds (1 joint, 1 loop)" in out
    assert "best 1.00 us" in out
    assert "reward" in out and "max 0.900" in out


# ---------------------------------------------------------------------------
# Hardening satellites: atomic trace save, corrupt manifests
# ---------------------------------------------------------------------------

def test_trace_save_is_atomic(tmp_path):
    trace = Trace(name="t")
    with trace.span("root"):
        pass
    path = tmp_path / "t.jsonl"
    path.write_text("old contents\n")
    trace.save(str(path))
    assert not os.path.exists(str(path) + ".tmp")  # tmp file replaced away
    data = load_trace(str(path))
    assert data.name == "t" and len(data.spans) == 1


def test_runs_list_skips_corrupt_manifest_with_warning(tmp_path, caplog,
                                                       capsys):
    from repro.obs.runstore import RunStore, trace_meta

    root = str(tmp_path / "runs")
    store = RunStore(root)
    writer = store.create("tune-g", machine="intel_cpu", seed=0,
                          workload="tune:g", config={})
    trace = Trace(name="t", meta=trace_meta(0))
    writer.finish(trace, {"g": {"best_latency": 1e-6, "measurements": 4}})
    os.makedirs(os.path.join(root, "zz-corrupt"))
    with open(os.path.join(root, "zz-corrupt", "manifest.json"), "w") as f:
        f.write("{not json")
    os.makedirs(os.path.join(root, "zz-empty"))  # no manifest at all
    with open(os.path.join(root, "stray.txt"), "w") as f:
        f.write("not a run dir\n")

    ids, skipped = store.scan()
    assert len(ids) == 1
    assert sorted(reason for _, reason in skipped) == [
        "corrupt manifest.json", "missing manifest.json",
    ]
    with caplog.at_level("WARNING"):
        assert main(["runs", "list", root]) == 0
    out = capsys.readouterr().out
    assert ids[0] in out and "zz-corrupt" not in out
    warnings = [r for r in caplog.records if r.levelname == "WARNING"]
    assert len(warnings) == 1  # one summary line, not one per dir
    assert "2 unreadable run dir(s)" in warnings[0].getMessage()


def test_runs_show_warns_on_manifest_error(tmp_path, caplog, capsys):
    run_dir = tmp_path / "r-20260101-000000-bad"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{truncated")
    (run_dir / "result.json").write_text(json.dumps({"tasks": {}}))
    with caplog.at_level("WARNING"):
        assert main(["runs", "show", str(run_dir)]) == 0
    assert any("corrupt manifest.json" in r.getMessage()
               for r in caplog.records)
    capsys.readouterr()


def test_runs_show_unresolvable_ref_exits_cleanly(tmp_path):
    with pytest.raises(SystemExit):
        main(["runs", "show", "no-such-run", "--store",
              str(tmp_path / "empty-store")])


def test_orphan_spans_still_render():
    spans = [_span("orphan", 0.0, 1.0, 5, parent=99)]
    roots = build_span_tree(spans)
    assert len(roots) == 1
    from repro.obs.trace import TraceData

    out = trace_report(TraceData({"name": "t"}, spans, [], {}))
    assert "orphan" in out
