"""Cost model, boosted trees, PPO, features, loop space, tasks."""

import math
import random

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.tensor import Tensor
from repro.lower.lower import lower_compute
from repro.machine.spec import get_machine
from repro.ops.conv import conv2d
from repro.ops.gemm import gemm
from repro.tuning.boosted_trees import GradientBoostedTrees, RegressionTree
from repro.tuning.cost_model import CostModel
from repro.tuning.features import N_FEATURES, stage_features
from repro.tuning.loop_space import LoopSpace
from repro.tuning.nn import MLP
from repro.tuning.ppo import (
    MAX_SLOTS,
    PPOActor,
    SharedCritic,
    decode_actions,
    encode_space_state,
)
from repro.tuning.space import ConfigSpace, ParamSpec, divisors
from repro.tuning.task import BudgetExhausted, TuningTask


def small_conv():
    inp = Tensor("I", (1, 8, 12, 12))
    ker = Tensor("K", (8, 8, 3, 3))
    return conv2d(inp, ker, name="c")


class TestBoostedTrees:
    def test_tree_fits_step_function(self):
        X = np.linspace(0, 1, 200)[:, None]
        y = (X[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(X, y)
        pred = tree.predict(X)
        assert np.abs(pred - y).mean() < 0.05

    def test_gbrt_fits_smooth_function(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(0, 1, size=(300, 3))
        y = 2 * X[:, 0] + np.sin(4 * X[:, 1]) - X[:, 2] ** 2
        model = GradientBoostedTrees(n_trees=60).fit(X, y)
        resid = model.predict(X) - y
        assert np.sqrt((resid**2).mean()) < 0.15

    def test_gbrt_ranks_monotone(self):
        X = np.linspace(0, 1, 100)[:, None]
        y = X[:, 0]
        model = GradientBoostedTrees().fit(X, y)
        pred = model.predict(np.array([[0.1], [0.9]]))
        assert pred[1] > pred[0]

    def test_empty_fit_rejected(self):
        with pytest.raises(ValueError):
            GradientBoostedTrees().fit(np.empty((0, 2)), np.empty(0))

    def test_constant_target(self):
        X = np.random.default_rng(1).uniform(size=(50, 2))
        model = GradientBoostedTrees().fit(X, np.full(50, 3.0))
        assert np.allclose(model.predict(X), 3.0)


class TestFeatures:
    def test_fixed_length(self):
        stage = lower_compute(small_conv())
        f = stage_features(stage)
        assert f.shape == (N_FEATURES,)
        assert np.isfinite(f).all()

    def test_distinguishes_schedules(self):
        from repro.loops.schedule import LoopSchedule

        comp = small_conv()
        a = stage_features(lower_compute(comp))
        sched = LoopSchedule().reorder(
            ["s0", "s1", "s2", "ri", "rh", "rw", "s3"]
        ).vectorize("s3").parallel("s0")
        b = stage_features(lower_compute(comp, {}, sched))
        assert not np.array_equal(a, b)


class TestCostModel:
    def test_learns_to_rank(self):
        """After updates, the model must rank a clearly-faster stage first."""
        m = get_machine("intel_cpu")
        from repro.loops.schedule import LoopSchedule
        from repro.machine.latency import estimate_stage

        comp = small_conv()
        cm = CostModel(retrain_every=8, min_samples=8)
        stages = []
        rng = random.Random(0)
        task = TuningTask(comp, m)
        space = task.loop_space_for({})
        for _ in range(40):
            cfg = space.space().sample(rng)
            try:
                stage = lower_compute(comp, {}, space.schedule(cfg))
            except Exception:
                continue
            lat = m.cycles_to_seconds(estimate_stage(stage, m).total_cycles)
            cm.update(stage, lat)
            stages.append((stage, lat))
        assert cm.trained
        sample = stages[:16]
        scores = cm.predict([s for s, _ in sample])
        lats = np.array([l for _, l in sample])
        # rank correlation between score and -latency should be positive
        order_score = np.argsort(-scores)
        order_true = np.argsort(lats)
        top_true = set(order_true[:5])
        assert len(top_true & set(order_score[:8])) >= 2

    def test_ignores_bad_latencies(self):
        cm = CostModel()
        stage = lower_compute(small_conv())
        cm.update(stage, math.inf)
        cm.update(stage, -1.0)
        assert cm.n_samples == 0

    def test_untrained_predicts_zeros(self):
        cm = CostModel()
        stage = lower_compute(small_conv())
        assert np.allclose(cm.predict([stage]), 0.0)
        assert cm.top_k([stage, stage], 1) == [0]


class TestMLPAndPPO:
    def test_mlp_learns_regression(self):
        rng = np.random.default_rng(0)
        net = MLP(2, 32, 1, rng)
        X = rng.uniform(-1, 1, size=(256, 2))
        y = (X[:, 0] * 0.5 - X[:, 1] * 0.3)[:, None]
        for _ in range(300):
            pred = net.forward(X)
            grad = 2 * (pred - y) / len(X)
            net.adam_step(net.backward(grad), lr=1e-2)
        final = float(((net.forward(X) - y) ** 2).mean())
        assert final < 0.01

    def test_state_dict_roundtrip(self):
        rng = np.random.default_rng(0)
        net = MLP(4, 8, 2, rng)
        state = net.state_dict()
        net2 = MLP(4, 8, 2, np.random.default_rng(1))
        net2.load_state_dict(state)
        x = rng.uniform(size=(3, 4))
        assert np.allclose(net.forward(x), net2.forward(x))

    def test_state_dict_shape_check(self):
        rng = np.random.default_rng(0)
        net = MLP(4, 8, 2, rng)
        with pytest.raises(ValueError):
            MLP(4, 8, 3, rng).load_state_dict(net.state_dict())

    def test_ppo_learns_bandit(self):
        """The actor should shift its action toward the rewarded region."""
        rng = np.random.default_rng(0)
        critic = SharedCritic(rng)
        actor = PPOActor(critic, rng)
        state = np.zeros(encode_space_state(ConfigSpace([]), None).shape)
        target = 0.8
        for _ in range(30):
            for _ in range(8):
                a = actor.act(state)
                reward = -abs(float(a[0]) - target) * 10
                actor.record(reward)
            actor.update()
        final_actions = [float(actor.act(state, explore=False)[0]) for _ in range(3)]
        assert abs(np.mean(final_actions) - target) < 0.25

    def test_encode_decode(self):
        space = ConfigSpace(
            [ParamSpec("f1", divisors(32)), ParamSpec("f2", divisors(8))]
        )
        state = encode_space_state(space, {"f1": 8, "f2": 2})
        assert np.isfinite(state).all()
        cfg = decode_actions(space, np.array([0.5, 1.0]))
        assert cfg["f1"] == 16 and cfg["f2"] == 8

    def test_actor_state_dict(self):
        rng = np.random.default_rng(0)
        actor = PPOActor(SharedCritic(rng), rng)
        sd = actor.state_dict()
        actor2 = PPOActor(SharedCritic(rng), rng)
        actor2.load_state_dict(sd)
        s = np.zeros(MAX_SLOTS * 3 + 2)
        assert np.allclose(actor.act(s, explore=False), actor2.act(s, explore=False))


class TestLoopSpace:
    def test_schedules_decode_and_lower(self):
        comp = small_conv()
        stage = lower_compute(comp)
        space = LoopSpace(stage)
        rng = random.Random(0)
        ok = 0
        for _ in range(40):
            cfg = space.space().sample(rng)
            sched = space.schedule(cfg)
            lower_compute(comp, {}, sched)  # must not raise
            ok += 1
        assert ok == 40

    def test_heuristics_valid(self):
        comp = small_conv()
        stage = lower_compute(comp)
        space = LoopSpace(stage)
        for cfg in space.heuristic_configs():
            space.space().validate(cfg)
            lower_compute(comp, {}, space.schedule(cfg))

    def test_vectorize_lands_innermost_spatial(self):
        comp = small_conv()
        space = LoopSpace(lower_compute(comp))
        cfg = space.space().default()
        cfg.update({"vectorize": 1, "pattern": 0})
        sched = space.schedule(cfg)
        assert sched.vectorize_var is not None


class TestTask:
    def test_budget_enforced(self):
        m = get_machine("intel_cpu")
        task = TuningTask(small_conv(), m, budget=3)
        space = task.loop_space_for({})
        rng = random.Random(0)
        seen = 0
        with pytest.raises(BudgetExhausted):
            for _ in range(20):
                cfg = space.space().sample(rng)
                task.measure({}, space.schedule(cfg))
                seen += 1
        assert task.measurements == 3

    def test_cache_does_not_consume_budget(self):
        m = get_machine("intel_cpu")
        task = TuningTask(small_conv(), m, budget=5)
        space = task.loop_space_for({})
        sched = space.schedule(space.space().default())
        a = task.measure({}, sched)
        b = task.measure({}, sched)
        assert a == b and task.measurements == 1

    def test_history_monotone(self):
        m = get_machine("intel_cpu")
        task = TuningTask(small_conv(), m, budget=20)
        space = task.loop_space_for({})
        rng = random.Random(1)
        for _ in range(15):
            try:
                task.measure({}, space.schedule(space.space().sample(rng)))
            except BudgetExhausted:
                break
        bests = [b for _, b in task.history]
        assert all(x >= y for x, y in zip(bests, bests[1:]))

    def test_expansion_penalty_charged(self):
        """Overlapped-unfold input layouts must cost more than their
        stage-only estimate (producer writes the duplicated data)."""
        from repro.layout.templates import template_for

        m = get_machine("intel_cpu")
        comp = small_conv()
        task = TuningTask(comp, m)
        tpl = template_for(comp)
        cfg = tpl.space().default()
        cfg.update({"c.ht": 5, "c.wt": 5})  # overlapped tiles
        layouts = tpl.instantiate(cfg)
        assert task._expansion_penalty(layouts) > 0
        assert task._expansion_penalty({}) == 0
